package trunk

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ovshighway/internal/mempool"
)

// offerFor pushes frames of payload into the trunk's A side as fast as the
// pool recycles them, for the given wall-clock window, while a drainer keeps
// node B's switch side empty. It returns the number of frames the NIC
// accepted and the peak a->b congestion score observed during the window.
func (e *env) offerFor(t *testing.T, payload []byte, window, gap time.Duration) (sent int, peak uint32) {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // node B's vSwitch: drain and free, so the trunk never blocks on B
		defer wg.Done()
		out := make([]*mempool.Buf, 32)
		for {
			n := e.nicB.Recv(out)
			for _, b := range out[:n] {
				b.Free()
			}
			select {
			case <-stop:
				if n == 0 {
					return
				}
			default:
			}
			if n == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		b, err := e.poolA.Get()
		if err != nil { // pool cycling through the trunk: wait for returns
			time.Sleep(50 * time.Microsecond)
		} else {
			if err := b.SetBytes(payload); err != nil {
				t.Fatal(err)
			}
			if e.nicA.Send([]*mempool.Buf{b}) != 1 {
				b.Free()
			} else {
				sent++
			}
		}
		if ab, _ := e.tr.Congestion(); ab > peak {
			peak = ab
		}
		if gap > 0 {
			time.Sleep(gap)
		}
	}
	close(stop)
	wg.Wait()
	return sent, peak
}

// TestTrunkCongestionGaugeTracksLoad: the per-direction congestion score is
// monotone with offered load — near zero when the offered rate sits under
// the trunk budget, above the sender's repick threshold (64) when the
// staging queue saturates — and decays back to zero once the direction goes
// idle. The reverse direction, which carries nothing, must stay at zero
// throughout.
func TestTrunkCongestionGaugeTracksLoad(t *testing.T) {
	e := newEnv(t, Config{RatePps: 20000, StagingCap: 64}, 7)
	frame := taggedFrame(t, 7)

	// Light phase: ~2kpps offered against a 20kpps budget. The staging queue
	// never builds, so the score stays under the congestion threshold.
	_, lightPeak := e.offerFor(t, frame, 200*time.Millisecond, 500*time.Microsecond)
	if lightPeak >= 64 {
		t.Fatalf("light load scored %d, want < 64 (uncongested)", lightPeak)
	}

	// Heavy phase: offer as fast as the pool recycles — far beyond the
	// budget. The staging queue fills, overflow drops saturate the sample,
	// and the EWMA must cross the repick threshold.
	sent, heavyPeak := e.offerFor(t, frame, 400*time.Millisecond, 0)
	if heavyPeak < 64 {
		t.Fatalf("saturating load scored %d (after %d frames), want >= 64", heavyPeak, sent)
	}
	if heavyPeak <= lightPeak {
		t.Fatalf("score not monotone with load: light %d, heavy %d", lightPeak, heavyPeak)
	}
	if _, ba := e.tr.Congestion(); ba != 0 {
		t.Fatalf("idle b->a direction scored %d, want 0", ba)
	}

	// Idle decay: with the sender quiet the pump keeps draining the staged
	// backlog and the EWMA must walk back to zero.
	out := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, b := range out[:e.nicB.Recv(out)] {
			b.Free()
		}
		if ab, _ := e.tr.Congestion(); ab == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	ab, _ := e.tr.Congestion()
	t.Fatalf("congestion score stuck at %d after going idle", ab)
}

// TestTrunkStagingCapBoundsQueue: Config.StagingCap is live — a burst that
// the default 256-frame staging queue absorbs loss-free overflows a
// shallow 8-frame queue into trunk drops, and the overflow saturates the
// congestion score.
func TestTrunkStagingCapBoundsQueue(t *testing.T) {
	burst := func(e *env) {
		frame := taggedFrame(t, 7)
		for i := 0; i < 64; i++ {
			e.sendA(t, frame)
		}
		// Wait until every burst frame is accounted: carried, dropped, or
		// delivered (the rate budget drains 64 frames in well under a second).
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			ab, _ := e.tr.Stats()
			if ab.Carried+ab.Dropped >= 64 {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		t.Fatal("burst frames unaccounted for")
	}

	deep := newEnv(t, Config{RatePps: 500}, 7)
	burst(deep)
	if ab, _ := deep.tr.Stats(); ab.Dropped != 0 {
		t.Fatalf("default staging cap dropped %d of a 64-frame burst", ab.Dropped)
	}

	shallow := newEnv(t, Config{RatePps: 500, StagingCap: 8}, 7)
	burst(shallow)
	if ab, _ := shallow.tr.Stats(); ab.Dropped == 0 {
		t.Fatal("StagingCap=8 absorbed a 64-frame burst without drops")
	}
	// Under sustained overload the shallow queue overflows on every pump
	// step, so the drop-saturated congestion sample must drive the EWMA
	// past the repick threshold (a one-shot burst only saturates a single
	// step — the token bucket's opening allowance drains the 8 staged
	// frames immediately and the score decays from ~63 before it can
	// converge).
	if _, peak := shallow.offerFor(t, taggedFrame(t, 7), 200*time.Millisecond, 0); peak < 64 {
		t.Fatalf("sustained staging overflow scored %d, want >= 64", peak)
	}
}

// TestTrunkPCPStatsSumAcrossBundle: under concurrent multi-priority traffic
// on a two-trunk bundle, every trunk's per-PCP carried/dropped counters sum
// exactly to its direction totals, and the bundle-wide totals account for
// every frame offered — no frame is double-counted or lost between the
// per-class and per-direction views. Stats readers hammer the counters while
// traffic flows; run under -race.
func TestTrunkPCPStatsSumAcrossBundle(t *testing.T) {
	bundle := []*env{
		newEnv(t, Config{RatePps: -1}, 7),
		newEnv(t, Config{RatePps: -1}, 7),
	}
	const perSender = 400
	pcps := []uint8{1, 5}

	var sent atomic.Uint64
	stop := make(chan struct{})
	var senders, aux sync.WaitGroup
	for _, e := range bundle {
		e := e
		aux.Add(1)
		go func() { // node B drainer
			defer aux.Done()
			out := make([]*mempool.Buf, 32)
			for {
				n := e.nicB.Recv(out)
				for _, b := range out[:n] {
					b.Free()
				}
				if n == 0 {
					select {
					case <-stop:
						return
					default:
						time.Sleep(50 * time.Microsecond)
					}
				}
			}
		}()
		for _, pcp := range pcps {
			frame := pcpFrame(t, 7, pcp)
			senders.Add(1)
			go func() { // one priority class's sender
				defer senders.Done()
				for n := 0; n < perSender; {
					b, err := e.poolA.Get()
					if err != nil {
						time.Sleep(50 * time.Microsecond)
						continue
					}
					if b.SetBytes(frame) != nil || e.nicA.Send([]*mempool.Buf{b}) != 1 {
						b.Free()
						continue
					}
					sent.Add(1)
					n++
				}
			}()
		}
		aux.Add(1)
		go func() { // concurrent stats observer (the -race subject)
			defer aux.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e.tr.PCPStats()
				e.tr.Stats()
				e.tr.Congestion()
				e.tr.Backlog()
			}
		}()
	}

	// Senders finish, then the trunks drain: wait for every offered frame to
	// be accounted as carried or dropped before closing the books.
	done := make(chan struct{})
	go func() { senders.Wait(); close(done) }()
	accounted := func() uint64 {
		var total uint64
		for _, e := range bundle {
			ab, _ := e.tr.Stats()
			total += ab.Carried + ab.Dropped
		}
		return total
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-done:
		default:
			time.Sleep(time.Millisecond)
			continue
		}
		if accounted() >= sent.Load() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	aux.Wait()

	var bundleTotal uint64
	for i, e := range bundle {
		abPCP, baPCP := e.tr.PCPStats()
		ab, ba := e.tr.Stats()
		var sumC, sumD uint64
		for c := 0; c < 8; c++ {
			sumC += abPCP[c].Carried
			sumD += abPCP[c].Dropped
		}
		if sumC != ab.Carried || sumD != ab.Dropped {
			t.Fatalf("trunk %d a->b: per-PCP sums %d/%d != direction totals %d/%d",
				i, sumC, sumD, ab.Carried, ab.Dropped)
		}
		for c := 0; c < 8; c++ {
			isTraffic := false
			for _, pcp := range pcps {
				if c == int(pcp) {
					isTraffic = true
				}
			}
			if !isTraffic && (abPCP[c].Carried != 0 || abPCP[c].Dropped != 0) {
				t.Fatalf("trunk %d: idle class %d shows %+v", i, c, abPCP[c])
			}
		}
		if ba.Carried != 0 || ba.Dropped != 0 || baPCP[1].Carried != 0 {
			t.Fatalf("trunk %d: idle b->a direction shows traffic: %+v", i, ba)
		}
		if e.tr.Unrouted() != 0 {
			t.Fatalf("trunk %d dropped %d unrouted frames", i, e.tr.Unrouted())
		}
		bundleTotal += ab.Carried + ab.Dropped
	}
	if bundleTotal != sent.Load() {
		t.Fatalf("bundle accounted %d frames, offered %d", bundleTotal, sent.Load())
	}
}
