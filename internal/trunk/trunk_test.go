package trunk

import (
	"bytes"
	"testing"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/pkt"
)

// env is a two-node micro-testbed: one NIC and one pool per side, joined by
// a trunk. The test plays the role of both vSwitches (nic.Send/Recv).
type env struct {
	nicA, nicB   *nic.NIC
	poolA, poolB *mempool.Pool
	tr           *Trunk
}

func newEnv(t *testing.T, cfg Config, vids ...uint16) *env {
	t.Helper()
	e := &env{
		poolA: mempool.MustNew(mempool.Config{Capacity: 512}),
		poolB: mempool.MustNew(mempool.Config{Capacity: 512}),
	}
	var err error
	if e.nicA, err = nic.New(nic.Config{ID: 1, Name: "ethA", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	if e.nicB, err = nic.New(nic.Config{ID: 2, Name: "ethB", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	cfg.Name = "t0"
	cfg.A = Endpoint{NIC: e.nicA, Pool: e.poolA}
	cfg.B = Endpoint{NIC: e.nicB, Pool: e.poolB}
	if e.tr, err = New(cfg); err != nil {
		t.Fatal(err)
	}
	for _, vid := range vids {
		if err := e.tr.AddLane(vid); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(e.tr.Stop)
	return e
}

// taggedFrame synthesizes a minimal UDP frame tagged with vid (PCP 0).
func taggedFrame(t testing.TB, vid uint16) []byte {
	return pcpFrame(t, vid, 0)
}

// pcpFrame synthesizes a minimal UDP frame tagged with vid and the given
// 802.1Q priority code point.
func pcpFrame(t testing.TB, vid uint16, pcp uint8) []byte {
	t.Helper()
	buf := make([]byte, 256)
	n, err := pkt.BuildUDP(buf, pkt.UDPSpec{
		SrcMAC: pkt.MAC{2, 0, 0, 0, 0, 1}, DstMAC: pkt.MAC{2, 0, 0, 0, 0, 2},
		SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000,
		VlanID: vid, VlanPCP: pcp, FrameLen: pkt.MinFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

// sendA pushes one payload out of node A's switch toward the trunk.
func (e *env) sendA(t testing.TB, payload []byte) {
	t.Helper()
	b, err := e.poolA.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetBytes(payload); err != nil {
		t.Fatal(err)
	}
	if e.nicA.Send([]*mempool.Buf{b}) != 1 {
		t.Fatal("nic A rejected the frame")
	}
}

// recvB polls node B's switch side until a frame arrives or the deadline
// passes.
func (e *env) recvB(d time.Duration) *mempool.Buf {
	out := make([]*mempool.Buf, 1)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if e.nicB.Recv(out) == 1 {
			return out[0]
		}
		time.Sleep(10 * time.Microsecond)
	}
	return nil
}

func TestTrunkCarriesLaneAndRehomes(t *testing.T) {
	e := newEnv(t, Config{}, 7)
	frame := taggedFrame(t, 7)
	e.sendA(t, frame)

	got := e.recvB(2 * time.Second)
	if got == nil {
		t.Fatal("frame did not cross the trunk")
	}
	if !bytes.Equal(got.Bytes(), frame) {
		t.Fatalf("frame corrupted across the trunk: %x", got.Bytes())
	}
	// The load-bearing property: the delivered buffer belongs to node B's
	// pool, and node A's buffer went home.
	if !e.poolB.Owns(got) {
		t.Fatal("delivered frame not re-homed into the receiving pool")
	}
	if e.poolA.Owns(got) {
		t.Fatal("delivered frame still backed by the sending pool")
	}
	got.Free()
	deadline := time.Now().Add(time.Second)
	for e.poolA.Avail() != e.poolA.Cap() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.poolA.Avail() != e.poolA.Cap() {
		t.Fatalf("sending pool leaked: %d of %d free", e.poolA.Avail(), e.poolA.Cap())
	}
	ab, _, ok := e.tr.LaneStats(7)
	if !ok || ab.Carried != 1 || ab.Dropped != 0 {
		t.Fatalf("lane 7 a->b stats = %+v (ok %v), want 1 carried", ab, ok)
	}
	tab, _ := e.tr.Stats()
	if tab.Carried != 1 {
		t.Fatalf("trunk a->b stats = %+v, want 1 carried", tab)
	}
}

func TestTrunkDropsUnroutedFrames(t *testing.T) {
	e := newEnv(t, Config{}, 7)
	e.sendA(t, taggedFrame(t, 99)) // unregistered vid
	e.sendA(t, func() []byte {     // untagged
		f := taggedFrame(t, 0)
		return f
	}())
	deadline := time.Now().Add(2 * time.Second)
	for e.tr.Unrouted() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := e.tr.Unrouted(); got != 2 {
		t.Fatalf("unrouted = %d, want 2", got)
	}
	if got := e.recvB(50 * time.Millisecond); got != nil {
		t.Fatal("unrouted frame was delivered")
	}
	// Both source buffers must be home again.
	if e.poolA.Avail() != e.poolA.Cap() {
		t.Fatalf("sending pool leaked: %d of %d free", e.poolA.Avail(), e.poolA.Cap())
	}
}

func TestTrunkLaneLifecycle(t *testing.T) {
	e := newEnv(t, Config{}, 10, 20)
	if got := e.tr.LaneCount(); got != 2 {
		t.Fatalf("LaneCount = %d, want 2", got)
	}
	if got := e.tr.Lanes(); len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("Lanes = %v", got)
	}
	if err := e.tr.AddLane(10); err == nil {
		t.Fatal("duplicate lane accepted")
	}
	if err := e.tr.AddLane(0); err == nil {
		t.Fatal("vid 0 accepted")
	}
	if err := e.tr.AddLane(4095); err == nil {
		t.Fatal("vid 4095 accepted")
	}
	if err := e.tr.RemoveLane(99); err == nil {
		t.Fatal("removing unknown lane accepted")
	}
	if err := e.tr.RemoveLane(10); err != nil {
		t.Fatal(err)
	}
	// Lane 10 is gone: its traffic drops as unrouted, lane 20 still flows.
	e.sendA(t, taggedFrame(t, 10))
	e.sendA(t, taggedFrame(t, 20))
	got := e.recvB(2 * time.Second)
	if got == nil {
		t.Fatal("surviving lane stalled after co-resident lane removal")
	}
	if vid, ok := pkt.FrameVlanID(got.Bytes()); !ok || vid != 20 {
		t.Fatalf("delivered vid = %d,%v, want 20", vid, ok)
	}
	got.Free()
	if e.tr.Unrouted() != 1 {
		t.Fatalf("unrouted = %d, want 1", e.tr.Unrouted())
	}
}

func TestTrunkBidirectional(t *testing.T) {
	e := newEnv(t, Config{}, 5)
	// B → A direction: push from node B's switch, receive on node A's.
	b, err := e.poolB.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetBytes(taggedFrame(t, 5)); err != nil {
		t.Fatal(err)
	}
	if e.nicB.Send([]*mempool.Buf{b}) != 1 {
		t.Fatal("nic B rejected the frame")
	}
	out := make([]*mempool.Buf, 1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if e.nicA.Recv(out) == 1 {
			if !e.poolA.Owns(out[0]) {
				t.Fatal("b->a frame not re-homed into pool A")
			}
			out[0].Free()
			_, ba, _ := e.tr.LaneStats(5)
			if ba.Carried != 1 {
				t.Fatalf("lane 5 b->a stats = %+v, want 1 carried", ba)
			}
			return
		}
		time.Sleep(10 * time.Microsecond)
	}
	t.Fatal("b->a frame did not arrive")
}

func TestTrunkLatencyShaping(t *testing.T) {
	const lat = 50 * time.Millisecond
	e := newEnv(t, Config{Latency: lat}, 3)
	start := time.Now()
	e.sendA(t, taggedFrame(t, 3))
	got := e.recvB(2 * time.Second)
	if got == nil {
		t.Fatal("frame did not arrive")
	}
	got.Free()
	if el := time.Since(start); el < lat {
		t.Fatalf("frame arrived after %v, before the %v propagation delay", el, lat)
	}
}

// TestTrunkSharedRateContention is the headline shared-uplink property: two
// lanes saturating one shaped trunk each converge to roughly half the
// trunk's budget — the rate is a shared budget, not per-lane.
func TestTrunkSharedRateContention(t *testing.T) {
	if testing.Short() {
		t.Skip("rate measurement needs a real-time window")
	}
	const rate = 4000.0
	e := newEnv(t, Config{RatePps: rate}, 10, 20)
	f10, f20 := taggedFrame(t, 10), taggedFrame(t, 20)
	stop := make(chan struct{})
	go func() {
		// One goroutine feeds both lanes (the NIC wire queue is SPSC),
		// alternating so both offer far more than half the budget.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			frame := f10
			if i%2 == 1 {
				frame = f20
			}
			if b, err := e.poolA.Get(); err == nil {
				b.SetBytes(frame)
				e.nicA.Send([]*mempool.Buf{b})
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}()
	defer close(stop)
	// Drain B continuously for the window.
	out := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		n := e.nicB.Recv(out)
		mempool.FreeBatch(out[:n])
		if n == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	ab10, _, _ := e.tr.LaneStats(10)
	ab20, _, _ := e.tr.LaneStats(20)
	total := ab10.Carried + ab20.Carried
	// 500 ms at 4000 pps ⇒ ~2000 frames across both lanes. Catch an
	// unshaped trunk (tens of thousands) and a starved lane.
	if total > 5000 {
		t.Fatalf("trunk carried %d frames in 500ms, shared shaping to %v pps not applied", total, rate)
	}
	if ab10.Carried == 0 || ab20.Carried == 0 {
		t.Fatalf("a lane starved under contention: %d/%d", ab10.Carried, ab20.Carried)
	}
	// Fair FIFO sharing: neither lane exceeds ~¾ of the carried total.
	for vid, carried := range map[uint16]uint64{10: ab10.Carried, 20: ab20.Carried} {
		if carried*4 > total*3 {
			t.Fatalf("lane %d took %d of %d carried frames, want ~half each", vid, carried, total)
		}
	}
}

// TestTrunkPCPWeightedScheduler is the lane-QoS headline: two lanes
// saturating one shaped trunk from different PCP classes with a 2:1 weight
// configuration converge to a ≈2:1 goodput split — the deficit-round-robin
// scheduler distributes the shared budget by weight, not FIFO arrival.
func TestTrunkPCPWeightedScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("rate measurement needs a real-time window")
	}
	const rate = 4000.0
	var weights [8]float64
	weights[0] = 1 // lane 20 rides PCP 0
	weights[6] = 2 // lane 10 rides PCP 6 at twice the weight
	e := newEnv(t, Config{RatePps: rate, PCPWeights: weights}, 10, 20)
	fHi, fLo := pcpFrame(t, 10, 6), pcpFrame(t, 20, 0)
	stop := make(chan struct{})
	go func() {
		// One goroutine feeds both lanes alternately (the NIC wire queue is
		// SPSC), each offering far more than its weighted share.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			frame := fHi
			if i%2 == 1 {
				frame = fLo
			}
			if b, err := e.poolA.Get(); err == nil {
				b.SetBytes(frame)
				e.nicA.Send([]*mempool.Buf{b})
			} else {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}()
	defer close(stop)
	out := make([]*mempool.Buf, 32)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		n := e.nicB.Recv(out)
		mempool.FreeBatch(out[:n])
		if n == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	hi, _, _ := e.tr.LaneStats(10)
	lo, _, _ := e.tr.LaneStats(20)
	total := hi.Carried + lo.Carried
	if total > 5000 {
		t.Fatalf("trunk carried %d frames in 500ms, shared shaping to %v pps not applied", total, rate)
	}
	if hi.Carried == 0 || lo.Carried == 0 {
		t.Fatalf("a class starved under 2:1 weighting: %d/%d", hi.Carried, lo.Carried)
	}
	ratio := float64(hi.Carried) / float64(lo.Carried)
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("2:1 PCP weighting delivered %.2f:1 goodput (%d vs %d carried), want ≈2:1",
			ratio, hi.Carried, lo.Carried)
	}
	// The per-class counters attribute the split to the right PCP queues.
	abPCP, _ := e.tr.PCPStats()
	if abPCP[6].Carried != hi.Carried || abPCP[0].Carried != lo.Carried {
		t.Fatalf("PCP stats %+v/%+v disagree with lane stats %d/%d",
			abPCP[6], abPCP[0], hi.Carried, lo.Carried)
	}
}

func TestTrunkDropsOnExhaustedDestination(t *testing.T) {
	e := &env{
		poolA: mempool.MustNew(mempool.Config{Capacity: 256}),
		// Destination pool too small for the burst in flight.
		poolB: mempool.MustNew(mempool.Config{Capacity: 4}),
	}
	var err error
	if e.nicA, err = nic.New(nic.Config{ID: 1, Name: "ethA", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	if e.nicB, err = nic.New(nic.Config{ID: 2, Name: "ethB", RatePps: -1}); err != nil {
		t.Fatal(err)
	}
	e.tr, err = New(Config{
		Name: "t0",
		A:    Endpoint{NIC: e.nicA, Pool: e.poolA},
		B:    Endpoint{NIC: e.nicB, Pool: e.poolB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.tr.AddLane(7); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.tr.Stop)

	// Flood without draining B: the 4-buffer destination pool exhausts.
	const burst = 128
	frame := taggedFrame(t, 7)
	for i := 0; i < burst; i++ {
		e.sendA(t, frame)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ab, _ := e.tr.Stats()
		if ab.Dropped > 0 && ab.Carried+ab.Dropped == burst {
			// Source pool must be whole again: every frame either crossed
			// (re-homed copy) or was dropped, and both paths free the
			// original.
			for e.poolA.Avail() != e.poolA.Cap() && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if e.poolA.Avail() != e.poolA.Cap() {
				t.Fatalf("sending pool leaked: %d of %d free", e.poolA.Avail(), e.poolA.Cap())
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	ab, _ := e.tr.Stats()
	t.Fatalf("expected drops on exhausted destination pool, stats %+v", ab)
}

func TestTrunkStopFreesInFlight(t *testing.T) {
	const lat = time.Minute // frames park on the delay line forever
	e := newEnv(t, Config{Latency: lat}, 9)
	frame := taggedFrame(t, 9)
	for i := 0; i < 16; i++ {
		e.sendA(t, frame)
	}
	// Wait until the pump re-homed them (pool B shrinks).
	deadline := time.Now().Add(2 * time.Second)
	for e.poolB.Avail() == e.poolB.Cap() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	e.tr.Stop()
	if e.poolB.Avail() != e.poolB.Cap() {
		t.Fatalf("in-flight frames leaked from pool B: %d of %d free",
			e.poolB.Avail(), e.poolB.Cap())
	}
	if e.poolA.Avail() != e.poolA.Cap() {
		t.Fatalf("source buffers leaked from pool A: %d of %d free",
			e.poolA.Avail(), e.poolA.Cap())
	}
}

func TestTrunkValidation(t *testing.T) {
	pool := mempool.MustNew(mempool.Config{Capacity: 4})
	dev, err := nic.New(nic.Config{ID: 1, Name: "eth", RatePps: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{A: Endpoint{NIC: dev, Pool: pool}}); err == nil {
		t.Fatal("missing B endpoint accepted")
	}
	if _, err := New(Config{
		A: Endpoint{NIC: dev, Pool: pool},
		B: Endpoint{NIC: dev},
	}); err == nil {
		t.Fatal("missing pool accepted")
	}
}
