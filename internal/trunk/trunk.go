// Package trunk simulates the shared uplink joining two NFV nodes' NICs —
// the ToR-style cable every inter-node service-graph crossing rides. Where
// the old per-crossing wire model gave each crossing a private link, a Trunk
// carries many VLAN-tagged lanes over ONE link per node pair: frames are
// demultiplexed by their 802.1Q vid, all lanes contend for the trunk's
// shared per-direction rate budget under a PCP-weighted deficit-round-robin
// scheduler (DCB-style per-priority queues, Config.PCPWeights), and stats
// are kept per lane, per PCP class and per direction.
//
// Each direction is a pump stepped by a Poller — one goroutine
// round-robining over every pump attached to it (a cluster shares ONE
// poller across all of its trunks, so an idle fabric costs one sleeper, not
// a goroutine per direction). A pump step drains the transmitting NIC's
// wire side (nic.DrainToWire), classifies each frame's lane by its VLAN id,
// re-homes accepted frames into the receiving node's mempool, applies the
// shared rate budget and propagation latency, and injects the copies into
// the receiving NIC (nic.InjectFromWire). Frames that carry no tag or an
// unregistered vid are dropped on the trunk (a real trunk port discards
// traffic for VLANs it is not configured to carry).
//
// Re-homing is the load-bearing step: the two nodes own independent
// fixed-population pools (independent hugepage regions on real hosts), so a
// frame can never carry its buffer across the link — the payload is copied
// into a buffer allocated from the destination pool and the source buffer
// returns to its own freelist. The mempool ownership guard turns any
// violation of this rule into a panic instead of silent freelist corruption.
package trunk

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ovshighway/internal/mempool"
	"ovshighway/internal/nic"
	"ovshighway/internal/pkt"
)

// Endpoint is one side of a trunk: the NIC it plugs into and the node-local
// pool arriving frames are re-homed into.
type Endpoint struct {
	NIC  *nic.NIC
	Pool *mempool.Pool
}

// Config parametrizes New.
type Config struct {
	Name string
	A, B Endpoint
	// RatePps caps each direction's carried rate, SHARED by every lane on
	// the trunk (0 = unshaped). This is the contended uplink budget: two
	// lanes saturating the trunk each converge to roughly half of it.
	RatePps float64
	// Latency is the propagation delay added to every frame, per direction.
	Latency time.Duration
	// PCPWeights assigns a deficit-round-robin weight to each 802.1Q
	// priority code point class. Under contention for the shared RatePps
	// budget, class i receives bandwidth proportional to its weight — the
	// DCB-style per-priority scheduling of a real ToR uplink. A zero weight
	// means the default weight 1 (an all-zero array is plain fair sharing),
	// so existing FIFO-era configs keep their contention behaviour.
	PCPWeights [8]float64
	// StagingCap bounds each PCP class's staging queue (default 256).
	// Overflow drops on the trunk exactly like a full hardware per-priority
	// egress queue; the bound also caps how much of the destination pool the
	// scheduler can park. Shallower queues drop sooner under incast —
	// sharper congestion signal, worse burst tolerance.
	StagingCap int
	// BatchSize is the per-iteration pump burst (default 32).
	BatchSize int
	// Poller, when non-nil, drives this trunk's two directions from a
	// shared polling goroutine (a cluster runs ONE poller for all of its
	// trunks). Nil gives the trunk a private poller, stopped with it.
	Poller *Poller
}

// Poller drives trunk pumps: a single goroutine round-robins over every
// direction of every attached trunk, replacing the old
// goroutine-per-direction pump model. On hosts with many node pairs this
// collapses 2·pairs idle pollers into one, and an idle fabric costs one
// 1 µs sleeper instead of a herd.
type Poller struct {
	mu    sync.Mutex // serializes attach/detach
	pumps atomic.Pointer[[]*pump]
	iters atomic.Uint64
	stop  atomic.Bool
	done  chan struct{}
}

// NewPoller starts an empty poller. Stop it after the last trunk using it
// has been stopped.
func NewPoller() *Poller {
	po := &Poller{done: make(chan struct{})}
	empty := []*pump{}
	po.pumps.Store(&empty)
	go po.run()
	return po
}

func (po *Poller) run() {
	defer close(po.done)
	for !po.stop.Load() {
		po.iters.Add(1)
		moved := 0
		for _, p := range *po.pumps.Load() {
			moved += p.pull()
			moved += p.deliver()
		}
		if moved == 0 {
			// The whole fabric is idle (or waiting out propagation delays):
			// yield the core. A busy spin here would starve the single-core
			// measurement hosts (see DESIGN.md "Cooperative backpressure").
			time.Sleep(time.Microsecond)
		}
	}
}

// attach registers pumps; the poller starts stepping them on its next
// iteration.
func (po *Poller) attach(ps ...*pump) {
	po.mu.Lock()
	defer po.mu.Unlock()
	cur := *po.pumps.Load()
	next := make([]*pump, 0, len(cur)+len(ps))
	next = append(append(next, cur...), ps...)
	po.pumps.Store(&next)
}

// detach removes pumps and returns only after the polling goroutine can no
// longer be mid-step on them, so the caller may reclaim their in-flight
// buffers.
func (po *Poller) detach(ps ...*pump) {
	drop := make(map[*pump]bool, len(ps))
	for _, p := range ps {
		drop[p] = true
	}
	po.mu.Lock()
	cur := *po.pumps.Load()
	next := make([]*pump, 0, len(cur))
	for _, p := range cur {
		if !drop[p] {
			next = append(next, p)
		}
	}
	po.pumps.Store(&next)
	po.mu.Unlock()
	// Two iteration boundaries: the iteration that may have loaded the old
	// slice finishes, then a fresh one starts from the new slice.
	c := po.iters.Load()
	for po.iters.Load() < c+2 {
		select {
		case <-po.done:
			return // poller already stopped: nothing is stepping anything
		default:
			runtime.Gosched()
		}
	}
}

// Stop halts the polling goroutine and waits for it. Idempotent.
func (po *Poller) Stop() {
	if !po.stop.CompareAndSwap(false, true) {
		return
	}
	<-po.done
}

// DirStats counts one direction's traffic.
type DirStats struct {
	// Carried frames were delivered into the receiving NIC.
	Carried uint64
	// Dropped frames were lost on the trunk: receiving pool exhausted,
	// receiving NIC ring full, or frame larger than the receiving buffers.
	// Lane-less frames (no tag / unknown vid) count here too, and in
	// Unrouted.
	Dropped uint64
}

// dirCounters is the atomic backing of DirStats.
type dirCounters struct {
	carried atomic.Uint64
	dropped atomic.Uint64
}

func (c *dirCounters) stats() DirStats {
	return DirStats{Carried: c.carried.Load(), Dropped: c.dropped.Load()}
}

// lane is one VLAN-steered flow sharing the trunk: a vid plus its
// per-direction counters. ab/ba are in trunk orientation (A→B, B→A).
type lane struct {
	vid uint16
	ab  dirCounters
	ba  dirCounters
}

// Trunk is a running bidirectional shared link.
type Trunk struct {
	name string
	ab   *pump
	ba   *pump

	poller      *Poller
	ownedPoller bool
	stopped     atomic.Bool

	// Fault-injection state (chaos testing): down simulates a pulled cable —
	// the pumps keep draining the NICs but every frame is lost on the wire —
	// and lossBits (a float64's bits) drops each carried frame with the given
	// probability. Both are atomics so the control plane flaps them while the
	// poller goroutine is mid-step; faulted counts the frames they ate.
	down     atomic.Bool
	lossBits atomic.Uint64
	faulted  atomic.Uint64

	// lanes is a copy-on-write vid→lane map: the polling goroutine loads
	// it wait-free per frame; AddLane/RemoveLane swap whole maps under mu.
	mu    sync.Mutex
	lanes atomic.Pointer[map[uint16]*lane]
}

// New connects the two endpoints and attaches both direction pumps to the
// configured (or a private) poller. The trunk carries no lanes until
// AddLane registers them.
func New(cfg Config) (*Trunk, error) {
	if cfg.A.NIC == nil || cfg.B.NIC == nil {
		return nil, errors.New("trunk: both endpoints need a NIC")
	}
	if cfg.A.Pool == nil || cfg.B.Pool == nil {
		return nil, errors.New("trunk: both endpoints need a pool")
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.StagingCap <= 0 {
		cfg.StagingCap = defaultStagingCap
	}
	t := &Trunk{name: cfg.Name, poller: cfg.Poller}
	if t.poller == nil {
		t.poller = NewPoller()
		t.ownedPoller = true
	}
	empty := map[uint16]*lane{}
	t.lanes.Store(&empty)
	sh := shaping{RatePps: cfg.RatePps, Latency: cfg.Latency, Weights: cfg.PCPWeights, StagingCap: cfg.StagingCap}
	t.ab = newPump(fmt.Sprintf("%s:a->b", cfg.Name), t, dirAB, cfg.A, cfg.B, sh, cfg.BatchSize)
	t.ba = newPump(fmt.Sprintf("%s:b->a", cfg.Name), t, dirBA, cfg.B, cfg.A, sh, cfg.BatchSize)
	t.poller.attach(t.ab, t.ba)
	return t, nil
}

// Name returns the trunk's name.
func (t *Trunk) Name() string { return t.name }

// AddLane registers a VLAN lane; frames tagged with vid start flowing.
// Valid vids are 1..4094. Registering a live vid is an error.
func (t *Trunk) AddLane(vid uint16) error {
	if vid == 0 || vid > 4094 {
		return fmt.Errorf("trunk %s: vid %d out of range [1,4094]", t.name, vid)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addLaneLocked(vid)
}

// AllocLane registers a lane on the lowest free vid and returns it — the
// single atomic owner of vid allocation, so callers need no shadow set of
// registered vids.
func (t *Trunk) AllocLane() (uint16, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.lanes.Load()
	for vid := uint16(1); vid <= 4094; vid++ {
		if _, taken := cur[vid]; !taken {
			return vid, t.addLaneLocked(vid)
		}
	}
	return 0, fmt.Errorf("trunk %s: out of VLAN ids", t.name)
}

// addLaneLocked registers vid; caller holds t.mu.
func (t *Trunk) addLaneLocked(vid uint16) error {
	cur := *t.lanes.Load()
	if _, dup := cur[vid]; dup {
		return fmt.Errorf("trunk %s: lane %d already registered", t.name, vid)
	}
	next := make(map[uint16]*lane, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[vid] = &lane{vid: vid}
	t.lanes.Store(&next)
	return nil
}

// RemoveLane unregisters a lane. Frames already re-homed onto the delay
// line still deliver; new arrivals for the vid drop as unrouted. Removing
// an unknown vid is an error.
func (t *Trunk) RemoveLane(vid uint16) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.lanes.Load()
	if _, ok := cur[vid]; !ok {
		return fmt.Errorf("trunk %s: lane %d not registered", t.name, vid)
	}
	next := make(map[uint16]*lane, len(cur)-1)
	for k, v := range cur {
		if k != vid {
			next[k] = v
		}
	}
	t.lanes.Store(&next)
	return nil
}

// LaneCount returns the number of registered lanes.
func (t *Trunk) LaneCount() int { return len(*t.lanes.Load()) }

// Lanes returns the registered vids in ascending order.
func (t *Trunk) Lanes() []uint16 {
	cur := *t.lanes.Load()
	out := make([]uint16, 0, len(cur))
	for vid := range cur {
		out = append(out, vid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LaneStats returns one lane's per-direction counters (A→B, B→A). ok is
// false for unregistered vids.
func (t *Trunk) LaneStats(vid uint16) (ab, ba DirStats, ok bool) {
	ln := (*t.lanes.Load())[vid]
	if ln == nil {
		return DirStats{}, DirStats{}, false
	}
	return ln.ab.stats(), ln.ba.stats(), true
}

// Stats returns whole-trunk per-direction counters (A→B, B→A), including
// unrouted drops.
func (t *Trunk) Stats() (ab, ba DirStats) { return t.ab.stats(), t.ba.stats() }

// PCPStats returns per-direction counters split by 802.1Q priority class —
// the observable of the DRR scheduler (index = PCP).
func (t *Trunk) PCPStats() (ab, ba [8]DirStats) {
	for c := 0; c < 8; c++ {
		ab[c] = DirStats{Carried: t.ab.pcpCarried[c].Load(), Dropped: t.ab.pcpDropped[c].Load()}
		ba[c] = DirStats{Carried: t.ba.pcpCarried[c].Load(), Dropped: t.ba.pcpDropped[c].Load()}
	}
	return ab, ba
}

// Congestion returns each direction's published congestion score (A→B,
// B→A): the staging-occupancy EWMA + overflow-drop signal, 0 (quiet) to 255
// (saturated). The same value the sending switch's adaptive ECMP reads from
// the trunk NIC's gauge, exposed here for tests and experiment tables.
func (t *Trunk) Congestion() (ab, ba uint32) {
	return t.ab.gauge.Load(), t.ba.gauge.Load()
}

// Backlog reports the number of frames currently held inside the trunk —
// staged in a PCP class queue or waiting out the propagation delay line,
// both directions. Parked frames move no stats counter, so counter
// stability alone cannot distinguish an empty trunk from a stalled one;
// a migration drain must see this reach zero before retiring a lane.
func (t *Trunk) Backlog() int {
	total := 0
	for _, p := range []*pump{t.ab, t.ba} {
		// carried+dropped are loaded BEFORE queued: the pump may be moving
		// frames concurrently, and the reversed order could observe a queued
		// bump without its matching carried/dropped yet — fine (backlog reads
		// high, the probe stays conservative) — whereas loading queued first
		// could undercount and report empty while frames are still inside.
		done := p.carried.Load() + p.dropped.Load()
		if q := p.queued.Load(); q > done {
			total += int(q - done)
		}
	}
	return total
}

// Unrouted counts frames dropped because they carried no 802.1Q tag or an
// unregistered vid, summed over both directions.
func (t *Trunk) Unrouted() uint64 {
	return t.ab.unrouted.Load() + t.ba.unrouted.Load()
}

// SetDown injects (or clears) a link-down fault: while down the trunk keeps
// draining its NICs but every frame is lost on the wire, exactly like a
// pulled cable with the ports still up. Toggling it rapidly models a
// flapping link. Safe while traffic flows.
func (t *Trunk) SetDown(down bool) { t.down.Store(down) }

// Down reports whether a link-down fault is injected.
func (t *Trunk) Down() bool { return t.down.Load() }

// SetLossRate injects random frame loss: each frame entering the trunk is
// dropped with probability rate (clamped to [0,1]). Zero clears the fault.
// Safe while traffic flows.
func (t *Trunk) SetLossRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.lossBits.Store(math.Float64bits(rate))
}

// LossRate returns the injected random-loss probability.
func (t *Trunk) LossRate() float64 { return math.Float64frombits(t.lossBits.Load()) }

// Faulted counts the frames eaten by injected faults (down or random loss),
// summed over both directions. Fault drops also count in the regular
// per-lane/per-direction Dropped counters — Faulted attributes the share
// that was injected rather than congestion.
func (t *Trunk) Faulted() uint64 { return t.faulted.Load() }

// Stop detaches both pumps from the poller and frees frames still in
// flight on the trunk. Frames parked inside the NIC queues stay put: they
// belong to whoever tears the NICs down. Idempotent.
func (t *Trunk) Stop() {
	if !t.stopped.CompareAndSwap(false, true) {
		return
	}
	t.poller.detach(t.ab, t.ba)
	t.ab.drain()
	t.ba.drain()
	if t.ownedPoller {
		t.poller.Stop()
	}
}

// direction orients a pump relative to the trunk's A/B endpoints, selecting
// which side of each lane's counters it owns.
type direction int

const (
	dirAB direction = iota
	dirBA
)

// shaping configures one direction of the trunk.
type shaping struct {
	RatePps    float64
	Latency    time.Duration
	Weights    [8]float64
	StagingCap int
}

// delayed is one re-homed frame waiting out its propagation delay. The lane
// pointer is resolved at pull time so delivery attributes drops to the lane
// even if it was removed meanwhile; pcp is the frame's 802.1Q priority
// class, resolved once for scheduler classing and per-class stats.
type delayed struct {
	buf  *mempool.Buf
	lane *lane
	due  int64 // UnixNano
	pcp  uint8
}

// classQueue is one PCP class's staging FIFO between lane demux and the DRR
// grant (head index avoids reslicing, same idiom as the delay line).
type classQueue struct {
	q    []delayed
	head int
}

func (c *classQueue) pending() int { return len(c.q) - c.head }

// defaultStagingCap is the Config.StagingCap default: the per-PCP staging
// bound overflow drops against when the deployment does not choose one.
const defaultStagingCap = 256

// pump moves one direction: src NIC wire-TX → lane demux → re-home →
// per-PCP staging → deficit-round-robin grant under the shared rate budget
// → propagation delay line → dst NIC wire-RX. The owning poller's goroutine
// is the single consumer of the src queue and the single producer of the
// dst queue, honoring both SPSC contracts; every pump field is touched only
// by that goroutine while the pump is attached.
type pump struct {
	name    string
	trunk   *Trunk
	dir     direction
	src     Endpoint
	dst     Endpoint
	shaping shaping
	bucket  tokenBucket

	drained []*mempool.Buf // scratch: frames pulled off the src NIC
	homed   []*mempool.Buf // scratch: fresh dst-pool buffers
	inFly   []delayed      // FIFO delay line (head index avoids reslicing)
	inHead  int

	// classes stage re-homed frames per PCP; quantum/deficit/cursor drive
	// the DRR pass distributing the shared token budget across them. The
	// cursor and in-service flag persist across passes: the shaped budget
	// arrives in sub-quantum trickles, and a scheduler that restarted its
	// scan at class 0 on every grant would hand the whole trickle to the
	// lowest backlogged class regardless of weight.
	classes    [8]classQueue
	quantum    [8]int
	deficit    [8]int
	cursor     int
	inService  [8]bool
	stagingCap int

	// Congestion signal: every pump step folds the staging occupancy (summed
	// over the 8 PCP classes, scaled against stagingCap) and the
	// staging-overflow drop delta into an EWMA and publishes the resulting
	// 0..255 score into the SOURCE NIC's congestion gauge — the port the
	// sending switch outputs into, so its adaptive ECMP reads exactly this
	// direction's backpressure. congAcc holds the EWMA in 1/16ths for
	// smoothing headroom; congDrops/lastCongDrops are single-writer like
	// every other pump field (only the gauge store is atomic).
	congAcc       int
	congDrops     uint64
	lastCongDrops uint64
	gauge         *atomic.Uint32

	// queued counts every frame pulled off the source NIC; each such frame
	// eventually lands in carried or dropped, so queued-carried-dropped is
	// the number of frames currently held inside the pump (class staging
	// queues plus the propagation delay line) — the emptiness probe a
	// migration drain needs, since parked frames move no other counter.
	queued   atomic.Uint64
	carried  atomic.Uint64
	dropped  atomic.Uint64
	unrouted atomic.Uint64
	// pcpCarried/pcpDropped split the direction's counters by PCP class for
	// the lane-QoS experiment tables.
	pcpCarried [8]atomic.Uint64
	pcpDropped [8]atomic.Uint64

	// rng drives injected random loss (xorshift64*; single-goroutine like
	// every other pump field, seeded per direction so the two pumps of a
	// trunk do not drop in lockstep).
	rng uint64
}

func newPump(name string, t *Trunk, dir direction, src, dst Endpoint, sh shaping, batch int) *pump {
	p := &pump{
		name:       name,
		trunk:      t,
		dir:        dir,
		src:        src,
		dst:        dst,
		shaping:    sh,
		stagingCap: sh.StagingCap,
		gauge:      src.NIC.CongestionGauge(),
		drained:    make([]*mempool.Buf, batch),
		homed:      make([]*mempool.Buf, batch),
		rng:        0x9E3779B97F4A7C15 ^ uint64(dir+1),
	}
	if p.stagingCap <= 0 {
		p.stagingCap = defaultStagingCap
	}
	// Packet-granular quanta: normalize so the smallest positive weight maps
	// to one packet per service turn (zero = default weight 1 — an
	// unconfigured class is not starved), preserving the configured ratios
	// up to rounding.
	minW := 0.0
	var w [8]float64
	for c := range w {
		w[c] = sh.Weights[c]
		if w[c] <= 0 {
			w[c] = 1
		}
		if minW == 0 || w[c] < minW {
			minW = w[c]
		}
	}
	for c := range p.quantum {
		q := int(w[c]/minW + 0.5)
		if q < 1 {
			q = 1
		}
		p.quantum[c] = q
	}
	p.bucket.init(sh.RatePps)
	return p
}

func (p *pump) stats() DirStats {
	return DirStats{Carried: p.carried.Load(), Dropped: p.dropped.Load()}
}

// laneDir returns the lane counter side this pump feeds.
func (p *pump) laneDir(ln *lane) *dirCounters {
	if p.dir == dirAB {
		return &ln.ab
	}
	return &ln.ba
}

// pull drains a burst off the transmitting NIC, demultiplexes each frame to
// its lane by VLAN id and its PCP class, re-homes accepted frames into the
// destination pool and stages them per class, then runs the DRR grant pass.
// Lane-less frames (no tag, unregistered vid), frames that cannot be
// re-homed (destination pool exhausted, oversized payload) and frames
// overflowing their class's staging queue are dropped on the trunk.
func (p *pump) pull() int {
	n := p.src.NIC.DrainToWire(p.drained)
	moved := 0
	if n > 0 {
		p.queued.Add(uint64(n))
		lanes := *p.trunk.lanes.Load()
		down := p.trunk.down.Load()
		loss := math.Float64frombits(p.trunk.lossBits.Load())
		got := p.dst.Pool.GetBatch(p.homed[:n])
		kept := 0
		var unrouted uint64
		for i := 0; i < n; i++ {
			srcBuf := p.drained[i]
			vid, tagged := pkt.FrameVlanID(srcBuf.Bytes())
			var ln *lane
			if tagged {
				ln = lanes[vid]
			}
			if ln == nil {
				unrouted++
				continue // no lane carries this frame: trunk drop
			}
			pcp, _ := pkt.FrameVlanPCP(srcBuf.Bytes())
			if down || (loss > 0 && p.rand01() < loss) {
				p.trunk.faulted.Add(1)
				p.laneDir(ln).dropped.Add(1)
				p.pcpDropped[pcp].Add(1)
				continue // injected fault: lost on the wire
			}
			if kept >= got {
				p.laneDir(ln).dropped.Add(1)
				p.pcpDropped[pcp].Add(1)
				continue // destination pool exhausted: trunk drop
			}
			cq := &p.classes[pcp]
			if cq.pending() >= p.stagingCap {
				p.laneDir(ln).dropped.Add(1)
				p.pcpDropped[pcp].Add(1)
				p.congDrops++
				continue // class egress queue full: trunk drop
			}
			dstBuf := p.homed[kept]
			if err := dstBuf.SetBytes(srcBuf.Bytes()); err != nil {
				p.laneDir(ln).dropped.Add(1)
				p.pcpDropped[pcp].Add(1)
				continue // frame exceeds destination buffer geometry: trunk drop
			}
			dstBuf.TS = srcBuf.TS // latency probes survive the hop
			cq.q = append(cq.q, delayed{buf: dstBuf, lane: ln, pcp: pcp})
			kept++
		}
		// Unused destination buffers (demux/re-home failures) go straight back…
		if kept < got {
			mempool.FreeBatch(p.homed[kept:got])
		}
		// …and every source buffer returns to the transmitting node's pool.
		mempool.FreeBatch(p.drained[:n])
		if unrouted > 0 {
			p.unrouted.Add(unrouted)
		}
		if d := n - kept; d > 0 {
			p.dropped.Add(uint64(d))
		}
		moved = n
	}
	moved += p.schedule()
	p.updateCongestion()
	return moved
}

// updateCongestion folds this step's staging occupancy and overflow-drop
// delta into the direction's congestion EWMA and publishes the 0..255 score
// into the source NIC's gauge. Runs every pump step — including idle ones,
// so a drained queue decays the score back to zero. A step that overflowed
// the staging bound saturates the instantaneous sample: drops are the
// unambiguous congestion evidence, occupancy alone could sit just under the
// cap forever. Zero-alloc, single-writer; only the gauge store is atomic.
func (p *pump) updateCongestion() {
	occ := 0
	for c := range p.classes {
		occ += p.classes[c].pending()
	}
	inst := occ * 255 / p.stagingCap
	if d := p.congDrops - p.lastCongDrops; d > 0 {
		inst = 255
		p.lastCongDrops = p.congDrops
	}
	if inst > 255 {
		inst = 255
	}
	// EWMA in 1/16ths with alpha 1/4: fast enough to open within a few pump
	// steps of an incast, smooth enough that one bursty poll does not flap
	// the sender's repick gate.
	p.congAcc += (inst*16 - p.congAcc) / 4
	p.gauge.Store(uint32(p.congAcc / 16))
}

// rand01 returns the next xorshift64* sample mapped to [0,1).
func (p *pump) rand01() float64 {
	x := p.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	p.rng = x
	return float64((x*0x2545F4914F6CDD1D)>>11) / (1 << 53)
}

// schedule runs one deficit-round-robin pass: the shared token bucket
// grants an aggregate budget, and each PCP class with staged frames earns
// deficit proportional to its weight per round, moving that many frames
// onto the propagation delay line. Under contention the carried rates of
// two saturating classes converge to the ratio of their weights; with no
// shaping (rate 0) every staged frame moves immediately and weights are
// moot — QoS only bites when the uplink is the bottleneck.
func (p *pump) schedule() int {
	pending := 0
	for c := range p.classes {
		pending += p.classes[c].pending()
	}
	if pending == 0 {
		return 0
	}
	tokens := p.bucket.take(pending)
	if tokens == 0 {
		return 0
	}
	granted := 0
	due := time.Now().Add(p.shaping.Latency).UnixNano()
	for tokens > 0 {
		// Advance the cursor to the next backlogged class; an emptied class
		// forfeits its deficit (classic DRR).
		probes := 0
		for probes < 8 && p.classes[p.cursor].pending() == 0 {
			p.deficit[p.cursor] = 0
			p.inService[p.cursor] = false
			p.cursor = (p.cursor + 1) % 8
			probes++
		}
		if probes == 8 {
			break // nothing left to grant
		}
		c := p.cursor
		cq := &p.classes[c]
		if !p.inService[c] {
			// The class earns its quantum once per service turn, even when
			// the budget then arrives one token at a time across many passes.
			p.deficit[c] += p.quantum[c]
			p.inService[c] = true
		}
		serve := p.deficit[c]
		if avail := cq.pending(); serve > avail {
			serve = avail
		}
		if serve > tokens {
			serve = tokens
		}
		for i := 0; i < serve; i++ {
			p.inFly = append(p.inFly, cq.q[cq.head])
			cq.q[cq.head].buf = nil
			cq.head++
		}
		p.deficit[c] -= serve
		tokens -= serve
		granted += serve
		switch {
		case cq.pending() == 0:
			cq.q = cq.q[:0]
			cq.head = 0
			p.deficit[c] = 0
			p.inService[c] = false
			p.cursor = (c + 1) % 8
		case p.deficit[c] < 1:
			p.inService[c] = false
			p.cursor = (c + 1) % 8
		default:
			// Tokens ran out mid-quantum: stay in service at this class so
			// the next grant resumes here.
		}
		if cq.head >= p.stagingCap {
			n := copy(cq.q, cq.q[cq.head:])
			cq.q = cq.q[:n]
			cq.head = 0
		}
	}
	p.bucket.refund(tokens)
	// Stamp the grant batch's due time: frames scheduled in this pass share
	// one propagation deadline (they left the port back-to-back).
	for i := len(p.inFly) - granted; i < len(p.inFly); i++ {
		p.inFly[i].due = due
	}
	return granted
}

// deliver injects frames whose propagation delay has elapsed into the
// receiving NIC. Frames the NIC ring rejects are dropped (a full physical
// RX ring drops on the wire too), attributed to their lane.
func (p *pump) deliver() int {
	pending := len(p.inFly) - p.inHead
	if pending == 0 {
		return 0
	}
	ready := p.inHead
	now := time.Now().UnixNano()
	for ready < len(p.inFly) && p.inFly[ready].due <= now {
		ready++
	}
	if ready == p.inHead {
		return 0
	}
	moved := 0
	for p.inHead < ready {
		// Reuse the homed scratch as the injection window, remembering the
		// window's lanes for stats attribution.
		k := 0
		winStart := p.inHead
		for p.inHead < ready && k < len(p.homed) {
			p.homed[k] = p.inFly[p.inHead].buf
			k++
			p.inHead++
		}
		sent := p.dst.NIC.InjectFromWire(p.homed[:k])
		p.carried.Add(uint64(sent))
		for i := 0; i < sent; i++ {
			d := &p.inFly[winStart+i]
			p.laneDir(d.lane).carried.Add(1)
			p.pcpCarried[d.pcp].Add(1)
		}
		moved += k
		if sent < k {
			mempool.FreeBatch(p.homed[sent:k])
			p.dropped.Add(uint64(k - sent))
			for i := sent; i < k; i++ {
				d := &p.inFly[winStart+i]
				p.laneDir(d.lane).dropped.Add(1)
				p.pcpDropped[d.pcp].Add(1)
			}
		}
	}
	if p.inHead == len(p.inFly) {
		p.inFly = p.inFly[:0]
		p.inHead = 0
	} else if p.inHead >= 1024 {
		// Under sustained latency-shaped traffic the line never fully
		// drains, so compact the consumed head periodically or the slice
		// grows for the trunk's lifetime.
		n := copy(p.inFly, p.inFly[p.inHead:])
		p.inFly = p.inFly[:n]
		p.inHead = 0
	}
	return moved
}

// drain frees frames still on the delay line or staged in a class queue
// (they were already re-homed, so they return to the destination pool).
// Only call after the pump has been detached from its poller.
func (p *pump) drain() {
	for _, d := range p.inFly[p.inHead:] {
		d.buf.Free()
	}
	p.inFly = nil
	p.inHead = 0
	for c := range p.classes {
		cq := &p.classes[c]
		for _, d := range cq.q[cq.head:] {
			d.buf.Free()
		}
		cq.q = nil
		cq.head = 0
	}
}

// tokenBucket is a packet-granular rate limiter (rate 0 disables shaping).
// Single-goroutine use: only the owning pump touches it.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (t *tokenBucket) init(rate float64) {
	t.rate = rate
	if rate <= 0 {
		t.rate = 0
		return
	}
	t.burst = rate / 1000 // 1 ms of line rate
	if t.burst < 64 {
		t.burst = 64
	}
	t.tokens = t.burst
	t.last = time.Now()
}

func (t *tokenBucket) take(want int) int {
	if t.rate == 0 {
		return want
	}
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	grant := int(t.tokens)
	if grant > want {
		grant = want
	}
	if grant > 0 {
		t.tokens -= float64(grant)
	}
	return grant
}

func (t *tokenBucket) refund(n int) {
	if t.rate == 0 || n <= 0 {
		return
	}
	t.tokens += float64(n)
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
}
