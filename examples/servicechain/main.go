// Servicechain deploys the service graph from the paper's introduction
// (Figure 1): traffic crosses a firewall and a network monitor before
// reaching its destination. The firewall blocks a destination port, the
// monitor accounts per-flow — and because every hop is a point-to-point
// link, the whole chain runs over direct VM-to-VM channels while both VNFs
// remain completely unaware.
package main

import (
	"fmt"
	"log"
	"time"

	"ovshighway"
	"ovshighway/internal/graph"
	"ovshighway/internal/orchestrator"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vnf"
)

func main() {
	node, err := highway.Start(highway.Config{Mode: highway.ModeHighway})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()

	spec := highway.DefaultTrafficSpec()
	g := &highway.Graph{
		VNFs: []graph.VNF{
			{Name: "src", Kind: graph.KindSource,
				Args: orchestrator.SourceSpecArgs{Spec: spec, Flows: 8}},
			{Name: "firewall", Kind: graph.KindFirewall,
				Args: []vnf.FirewallRule{
					// Block UDP to :2003 — one of the 8 generated flows.
					{Proto: pkt.ProtoUDP, DstPort: 2000, SrcPrefix: pkt.IP4{10, 9, 0, 0}, SrcPrefixLen: 16},
				}},
			{Name: "monitor", Kind: graph.KindMonitor},
			{Name: "dst", Kind: graph.KindSink},
		},
		Edges: []graph.Edge{
			{A: graph.VNFPort("src", 0), B: graph.VNFPort("firewall", 0), Bidirectional: true},
			{A: graph.VNFPort("firewall", 1), B: graph.VNFPort("monitor", 0), Bidirectional: true},
			{A: graph.VNFPort("monitor", 1), B: graph.VNFPort("dst", 0), Bidirectional: true},
		},
	}

	d, err := node.Deploy(g)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Stop()

	// 3 bidirectional hops → 6 directed bypasses.
	if !node.WaitBypasses(6) {
		log.Fatalf("bypasses: %d of 6", node.BypassCount())
	}
	fmt.Println("service chain src → firewall → monitor → dst riding 6 direct channels")

	time.Sleep(time.Second)

	sink := d.Internal().Sink("dst")
	fmt.Printf("delivered to destination: %d packets\n", sink.Received.Load())

	// The monitor VNF saw every packet despite the vSwitch moving none.
	fmt.Println("\nOpenFlow view (per-flow stats include bypass traffic):")
	for _, fs := range node.FlowStats() {
		fmt.Printf("  priority=%d,%s actions=%s  n_packets=%d\n",
			fs.Priority, fs.Match, fs.Actions, fs.Packets)
	}
}
