// Telemetry demonstrates the paper's statistics transparency: an external
// OpenFlow controller polls port and flow counters over TCP while all bulk
// traffic rides bypass channels the vSwitch never touches. The counters
// keep advancing — the switch reads them from the shared-memory blocks the
// in-VM PMDs maintain — and a packet-out still reaches a port through its
// normal channel even mid-bypass.
package main

import (
	"fmt"
	"log"
	"time"

	"ovshighway"
	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
	"ovshighway/internal/pkt"
)

func main() {
	node, err := highway.Start(highway.Config{
		Mode:         highway.ModeHighway,
		OpenFlowAddr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()

	chain, err := node.DeployBidirChain(2, highway.ChainOptions{Flows: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer chain.Stop()
	if !node.WaitBypasses(chain.ExpectedBypasses()) {
		log.Fatal("bypasses not established")
	}
	fmt.Printf("%d bypasses live; the vSwitch forwards no bulk traffic\n\n", node.BypassCount())

	ctl, err := openflow.Dial(node.OpenFlowAddr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()

	dumpPorts := func() map[uint32]uint64 {
		if _, err := ctl.Send(openflow.PortStatsRequest{PortNo: openflow.PortAny}); err != nil {
			log.Fatal(err)
		}
		for {
			m, _, err := ctl.Recv()
			if err != nil {
				log.Fatal(err)
			}
			if reply, ok := m.(openflow.PortStatsReply); ok {
				out := make(map[uint32]uint64)
				for _, s := range reply.Stats {
					out[s.PortNo] = s.RxPackets
				}
				return out
			}
		}
	}

	before := dumpPorts()
	time.Sleep(time.Second)
	after := dumpPorts()

	fmt.Println("per-port rx counters as the controller sees them (1s apart):")
	for port, rx0 := range before {
		rx1 := after[port]
		fmt.Printf("  port %2d: %12d → %12d  (+%d/s)\n", port, rx0, rx1, rx1-rx0)
	}

	// Flow stats are merged the same way.
	if _, err := ctl.Send(openflow.FlowStatsRequest{OutPort: openflow.PortAny, Match: flow.MatchAll()}); err != nil {
		log.Fatal(err)
	}
	for {
		m, _, err := ctl.Recv()
		if err != nil {
			log.Fatal(err)
		}
		reply, ok := m.(openflow.FlowStatsReply)
		if !ok {
			continue
		}
		fmt.Println("\nflow counters (all accumulated by PMDs in shared memory):")
		for _, fs := range reply.Stats {
			fmt.Printf("  %s actions=%s  n_packets=%d\n", fs.Match, fs.Actions, fs.PacketCount)
		}
		break
	}

	// Packet-out delivery still works mid-bypass: the PMD keeps polling its
	// normal channel.
	frame := make([]byte, 128)
	n, _ := pkt.BuildUDP(frame, highway.DefaultTrafficSpec())
	po := openflow.PacketOut{
		InPort:  openflow.PortController,
		Actions: flow.Actions{flow.Output(1)},
		Data:    frame[:n],
	}
	if _, err := ctl.Send(po); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npacket-out injected to port 1 via its normal channel — delivered alongside bypass traffic")
}
