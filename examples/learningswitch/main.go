// Learningswitch runs the classic OpenFlow demo application — a MAC
// learning switch — as an external controller against the highway node.
//
// This is a transparency stress test from the controller's perspective: the
// application was written for a standard OpenFlow switch (table-miss punts,
// packet-outs, dl_dst-based flow-mods) and runs unmodified here. Its
// destination-MAC rules are *not* point-to-point in the detector's
// conservative sense, so no bypasses form — the node behaves exactly like
// vanilla OVS, which is precisely the compatibility the paper promises.
// Replace the learned rules with per-port catch-alls and the highway lights
// up; the controller cannot tell either way.
package main

import (
	"fmt"
	"log"
	"time"

	"ovshighway"
	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
	"ovshighway/internal/pkt"
)

func main() {
	node, err := highway.Start(highway.Config{
		Mode:         highway.ModeHighway,
		OpenFlowAddr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()

	// Three VMs, one port each, no pre-programmed rules: the switch starts
	// empty and punts misses to the controller.
	var ports []uint32
	for _, name := range []string{"vmA", "vmB", "vmC"} {
		ids, _, err := node.Internal().CreateVM(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		ports = append(ports, ids[0])
	}
	// Enable table-miss punting by installing a lowest-priority controller
	// rule (the OF 1.3 idiom).
	node.Internal().Switch.Table().Add(0, flow.MatchAll(), flow.Actions{flow.Controller()}, 0)

	ctl, err := openflow.Dial(node.OpenFlowAddr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()

	// The learning switch: MAC → port.
	macTable := make(map[pkt.MAC]uint32)

	// Inject a few frames from each VM so the controller can learn.
	specs := []struct {
		src, dst pkt.MAC
		inPort   uint32
	}{
		{pkt.MAC{2, 0, 0, 0, 0, 0xA}, pkt.MAC{2, 0, 0, 0, 0, 0xB}, ports[0]},
		{pkt.MAC{2, 0, 0, 0, 0, 0xB}, pkt.MAC{2, 0, 0, 0, 0, 0xA}, ports[1]},
		{pkt.MAC{2, 0, 0, 0, 0, 0xC}, pkt.MAC{2, 0, 0, 0, 0, 0xA}, ports[2]},
	}
	frame := make([]byte, 128)
	for _, s := range specs {
		n, _ := pkt.BuildUDP(frame, pkt.UDPSpec{
			SrcMAC: s.src, DstMAC: s.dst,
			SrcIP: pkt.IP4{10, 0, 0, 1}, DstIP: pkt.IP4{10, 0, 0, 2},
			SrcPort: 1, DstPort: 2, FrameLen: pkt.MinFrame,
		})
		// Emulate the frame arriving on the VM's port via packet-out looped
		// to the controller rule (simplest way to exercise the punt path).
		po := openflow.PacketOut{
			InPort:  s.inPort,
			Actions: flow.Actions{flow.Controller()},
			Data:    frame[:n],
		}
		if _, err := ctl.Send(po); err != nil {
			log.Fatal(err)
		}
	}

	// Controller loop: learn sources, install dl_dst rules once both ends
	// are known, flood otherwise.
	learned := 0
	deadline := time.After(5 * time.Second)
	for learned < 3 {
		type result struct {
			m   openflow.Msg
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, _, err := ctl.Recv()
			ch <- result{m, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				log.Fatal(r.err)
			}
			pi, ok := r.m.(openflow.PacketIn)
			if !ok {
				continue
			}
			var p pkt.Parser
			if p.Parse(pi.Data) != nil || !p.Decoded.Has(pkt.LayerEthernet) {
				continue
			}
			src := p.Eth.Src()
			inPort := pi.Match.Key.InPort
			if _, known := macTable[src]; !known {
				macTable[src] = inPort
				learned++
				fmt.Printf("learned %s on port %d\n", src, inPort)
				// Install the forwarding rule toward this MAC.
				fm := openflow.FlowMod{
					Command:  openflow.FlowCmdAdd,
					Priority: 10,
					Match:    flow.MatchAll().WithEthDst(src),
					Actions:  flow.Actions{flow.Output(inPort)},
					IdleTO:   60,
				}
				if _, err := ctl.Send(fm); err != nil {
					log.Fatal(err)
				}
			}
		case <-deadline:
			log.Fatalf("learned only %d MACs", learned)
		}
	}

	fmt.Printf("\nmac table: %d entries; installed %d dl_dst rules\n", len(macTable), learned)
	fmt.Printf("bypasses: %d (correct: MAC rules are not point-to-point, the detector stays conservative)\n",
		node.BypassCount())

	// Now flip the policy: wipe the learned rules and steer per port — the
	// same controller, a different rule shape — and the highway appears.
	// (The detector is conservative: as long as MAC rules or the
	// controller catch-all could claim a port's traffic, no bypass forms.)
	wipe := openflow.FlowMod{
		Command: openflow.FlowCmdDelete,
		Match:   flow.MatchAll(),
		OutPort: openflow.PortAny,
	}
	if _, err := ctl.Send(wipe); err != nil {
		log.Fatal(err)
	}
	for i := range ports {
		fm := openflow.FlowMod{
			Command:  openflow.FlowCmdAdd,
			Priority: 100,
			Match:    flow.MatchInPort(ports[i]),
			Actions:  flow.Actions{flow.Output(ports[(i+1)%len(ports)])},
		}
		if _, err := ctl.Send(fm); err != nil {
			log.Fatal(err)
		}
	}
	deadline2 := time.Now().Add(2 * time.Second)
	for node.BypassCount() == 0 && time.Now().Before(deadline2) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("after p-2-p policy: %d bypasses\n", node.BypassCount())
}
