// Dynamicbypass demonstrates the paper's dynamicity property end to end,
// driven by a real external OpenFlow controller over TCP:
//
//  1. the controller installs a point-to-point rule pair → the node
//     transparently builds direct VM-to-VM channels;
//  2. the controller refines the steering with a higher-priority rule that
//     splits traffic → the bypass dissolves on the fly and packets return
//     to the vSwitch path;
//  3. the controller removes the refinement → the bypass comes back.
//
// Traffic keeps flowing through every transition with zero loss.
package main

import (
	"fmt"
	"log"
	"time"

	"ovshighway"
	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
)

func main() {
	node, err := highway.Start(highway.Config{
		Mode:         highway.ModeHighway,
		OpenFlowAddr: "127.0.0.1:0",
		OnBypassUp: func(from, to uint32, setup time.Duration) {
			fmt.Printf("  [node] bypass %d→%d active after %v\n", from, to, setup)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()

	// A chain with live traffic (end0 ⇄ vnf1 ⇄ end1). Its deployment rules
	// already make every hop point-to-point.
	chain, err := node.DeployBidirChain(1, highway.ChainOptions{Flows: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer chain.Stop()
	if !node.WaitBypasses(4) {
		log.Fatal("initial bypasses not established")
	}
	fmt.Printf("phase 1: %d bypasses live, throughput %.3f Mpps\n",
		node.BypassCount(), chain.MeasureMpps(300*time.Millisecond))

	// An external controller connects and refines the steering: UDP :2000
	// from port 1 now goes to... port 2 as well, but via a distinct rule.
	// The detector must conservatively dissolve port 1's bypass (a second
	// rule admits its traffic).
	ctl, err := openflow.Dial(node.OpenFlowAddr(), 2*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()

	refinement := openflow.FlowMod{
		Command:  openflow.FlowCmdAdd,
		Priority: 100,
		Match:    flow.MatchInPort(1).WithIPProto(17).WithL4Dst(2000),
		Actions:  flow.Actions{flow.DecTTL(), flow.Output(2)},
	}
	if _, err := ctl.Send(refinement); err != nil {
		log.Fatal(err)
	}
	// Port 1's two directed links involve it as producer once: 4 → 3.
	deadline := time.Now().Add(2 * time.Second)
	for node.BypassCount() != 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("phase 2: refinement installed, %d bypasses live (port 1 back on the vSwitch), throughput %.3f Mpps\n",
		node.BypassCount(), chain.MeasureMpps(300*time.Millisecond))

	// Remove the refinement: the highway reforms.
	del := refinement
	del.Command = openflow.FlowCmdDeleteStrict
	del.OutPort = openflow.PortAny
	if _, err := ctl.Send(del); err != nil {
		log.Fatal(err)
	}
	if !node.WaitBypasses(4) {
		log.Fatal("bypass did not re-form")
	}
	fmt.Printf("phase 3: refinement removed, %d bypasses live again, throughput %.3f Mpps\n",
		node.BypassCount(), chain.MeasureMpps(300*time.Millisecond))

	fmt.Println("traffic never stopped; the VNFs never noticed")
}
