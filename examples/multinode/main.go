// Multinode: boot a 2-node cluster joined by a shared VLAN-steered 10G
// trunk, split a 3-forwarder bidirectional chain across the nodes, and
// compare highway against vanilla. The chain's intra-node hops still become
// direct VM-to-VM channels in highway mode; only the single trunk hop stays
// on the NIC path — the paper's mechanism composed with a real scale-out
// topology.
package main

import (
	"fmt"
	"log"
	"time"

	"ovshighway"
)

func measure(mode highway.Mode) float64 {
	cluster, err := highway.StartCluster(highway.ClusterConfig{
		Config: highway.Config{Mode: mode},
		Nodes:  []string{"node-a", "node-b"},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	chain, err := cluster.DeploySplitChain(3, nil, highway.ChainOptions{Flows: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer chain.Stop()

	seg := chain.Segments()
	fmt.Printf("  placement: %d VMs on node-a, %d on node-b (1 trunk lane)\n", seg[0], seg[1])
	if mode == highway.ModeHighway {
		if !cluster.WaitBypasses(chain.ExpectedBypasses()) {
			log.Fatalf("bypasses not established (%d live, want %d)",
				cluster.BypassCount(), chain.ExpectedBypasses())
		}
		fmt.Printf("  %d direct VM-to-VM channels up (node-a: %d, node-b: %d)\n",
			cluster.BypassCount(),
			cluster.NodeBypassCount("node-a"), cluster.NodeBypassCount("node-b"))
	}
	time.Sleep(200 * time.Millisecond) // warm up
	return chain.MeasureMpps(500 * time.Millisecond)
}

func main() {
	fmt.Println("cluster: node-a ═(10G VLAN trunk)═ node-b")
	fmt.Println("chain:   end0 ⇄ vnf1 ⇄ vnf2 │ vnf3 ⇄ end1 (bidirectional 64B, │ = trunk lane)")

	fmt.Println("\nvanilla cluster (every hop through its node's vSwitch):")
	vanilla := measure(highway.ModeVanilla)
	fmt.Printf("  %.3f Mpps\n", vanilla)

	fmt.Println("\nhighway cluster (intra-node hops bypassed):")
	hw := measure(highway.ModeHighway)
	fmt.Printf("  %.3f Mpps\n", hw)

	fmt.Printf("\nspeedup across the split chain: %.2fx\n", hw/vanilla)
}
