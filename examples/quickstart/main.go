// Quickstart: boot a highway node, deploy a 3-VM forwarder chain with
// bidirectional 64B traffic, watch the bypasses come up, and compare the
// throughput against the vanilla baseline — the paper's headline result in
// thirty lines of API.
package main

import (
	"fmt"
	"log"
	"time"

	"ovshighway"
)

func measure(mode highway.Mode) float64 {
	node, err := highway.Start(highway.Config{Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()

	chain, err := node.DeployBidirChain(3, highway.ChainOptions{Flows: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer chain.Stop()

	if mode == highway.ModeHighway {
		if !node.WaitBypasses(chain.ExpectedBypasses()) {
			log.Fatalf("bypasses not established (%d live)", node.BypassCount())
		}
		fmt.Printf("  %d direct VM-to-VM channels established\n", node.BypassCount())
	}
	time.Sleep(200 * time.Millisecond) // warm up
	return chain.MeasureMpps(500 * time.Millisecond)
}

func main() {
	fmt.Println("chain: end0 ⇄ vnf1 ⇄ vnf2 ⇄ vnf3 ⇄ end1 (bidirectional 64B)")

	fmt.Println("vanilla OvS-DPDK (every hop through the vSwitch):")
	vanilla := measure(highway.ModeVanilla)
	fmt.Printf("  throughput: %.3f Mpps\n", vanilla)

	fmt.Println("transparent highway (hops bypass the vSwitch):")
	fast := measure(highway.ModeHighway)
	fmt.Printf("  throughput: %.3f Mpps\n", fast)

	fmt.Printf("speedup: %.2fx — same VMs, same rules, zero VNF changes\n", fast/vanilla)
}
