package highway

import (
	"testing"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
)

// TestBypassDissolvesOnIdleExpiry checks the interplay between OpenFlow
// flow timeouts and the bypass manager: when the steering rule implementing
// a p-2-p link idle-expires, the detector must observe the removal and
// dissolve the bypass — and traffic (if any resumed) would fall back to the
// table-miss policy, not a stale fast path.
func TestBypassDissolvesOnIdleExpiry(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway, OpenFlowAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	// Two idle VMs (no traffic, so the idle timeout is guaranteed to fire).
	ids1, _, err := node.Internal().CreateVM("vmA", 1)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := node.Internal().CreateVM("vmB", 1)
	if err != nil {
		t.Fatal(err)
	}

	c, err := openflow.Dial(node.OpenFlowAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fm := openflow.FlowMod{
		Command: openflow.FlowCmdAdd, Priority: 10,
		Match:   flow.MatchInPort(ids1[0]),
		Actions: flow.Actions{flow.Output(ids2[0])},
		IdleTO:  1,
		Flags:   flow.SendFlowRemoved,
	}
	if _, err := c.Send(fm); err != nil {
		t.Fatal(err)
	}
	if !node.WaitBypasses(1) {
		t.Fatal("bypass not established")
	}

	// Wait for the idle expiry to dissolve it (sweep interval 500ms + 1s
	// timeout ⇒ comfortably under 5s).
	deadline := time.Now().Add(5 * time.Second)
	for node.BypassCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if node.BypassCount() != 0 {
		t.Fatal("bypass survived rule expiry")
	}
	if node.Internal().Registry.Len() != 0 {
		t.Fatal("shared segment leaked after expiry")
	}

	// The controller is told about the expiry.
	frDeadline := time.After(3 * time.Second)
	for {
		type result struct {
			m   openflow.Msg
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, _, err := c.Recv()
			ch <- result{m, err}
		}()
		select {
		case r := <-ch:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if fr, ok := r.m.(openflow.FlowRemoved); ok {
				if fr.Reason != openflow.RemovedIdleTimeout {
					t.Fatalf("reason = %d", fr.Reason)
				}
				return
			}
		case <-frDeadline:
			t.Fatal("no flow-removed notification")
		}
	}
}

// TestVMDeathDissolvesBypass injects the failure the paper's agent must
// survive: a VM disappears while its port is one end of an active bypass.
// The candidate-port change must dissolve the link without leaking segments
// or wedging the manager, even though the plumber's calls toward the dead
// VM fail.
func TestVMDeathDissolvesBypass(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	ids1, _, err := node.Internal().CreateVM("vmA", 1)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := node.Internal().CreateVM("vmB", 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := node.Internal().Switch.Table()
	tb.Add(10, flow.MatchInPort(ids1[0]), flow.Actions{flow.Output(ids2[0])}, 0)
	tb.Add(10, flow.MatchInPort(ids2[0]), flow.Actions{flow.Output(ids1[0])}, 0)
	if !node.WaitBypasses(2) {
		t.Fatal("bypasses not established")
	}

	// Kill vmB. Its ports leave the candidate set; the manager must tear
	// both directions down despite RemoveRx/Unplug failing toward vmB.
	if err := node.Internal().DestroyVM("vmB", ids2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for node.BypassCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if node.BypassCount() != 0 {
		t.Fatalf("bypasses after VM death: %d", node.BypassCount())
	}
	if node.Internal().Registry.Len() != 0 {
		t.Fatalf("segments leaked: %d", node.Internal().Registry.Len())
	}

	// Clean up the dead VM's rules, as an orchestrator would. (Until then
	// the detector rightly refuses to bypass port A: the stale rule toward
	// the dead port makes A's steering ambiguous.)
	tb.DeleteWhere(func(f *flow.Flow) bool {
		if f.Match.AdmitsInPort(ids2[0]) && f.Match.Key.InPort == ids2[0] {
			return true
		}
		out, ok := f.Actions.SoleOutput()
		return ok && out == ids2[0]
	})

	// The manager must still be functional: a new pair forms a new bypass.
	ids3, _, err := node.Internal().CreateVM("vmC", 1)
	if err != nil {
		t.Fatal(err)
	}
	tb.Add(10, flow.MatchInPort(ids3[0]), flow.Actions{flow.Output(ids1[0])}, 0)
	tb.Add(10, flow.MatchInPort(ids1[0]), flow.Actions{flow.Output(ids3[0])}, 0)
	if !node.WaitBypasses(2) {
		t.Fatalf("manager wedged after failure: %d bypasses", node.BypassCount())
	}
}

// TestRuleReplacementReplumbsBypass: replacing the implementing rule (same
// match, new flow object) must re-register stats against the new flow
// without losing already-accumulated counters.
func TestRuleReplacementReplumbsBypass(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(1, ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !node.WaitBypasses(4) {
		t.Fatal("bypasses not established")
	}
	time.Sleep(100 * time.Millisecond)

	// Port stats before replacement.
	var before uint64
	if v, ok := node.PortStats(1); ok {
		before = v.RxPackets
	}
	if before == 0 {
		t.Fatal("no traffic before replacement")
	}

	// Re-add the same rule (flow object replaced, counters reset per
	// OpenFlow semantics, bypass re-plumbed).
	tb := node.Internal().Switch.Table()
	for _, f := range tb.Snapshot() {
		if f.Match.Key.InPort == 1 {
			tb.Add(f.Priority, f.Match, f.Actions, f.Cookie+1000)
		}
	}
	if !node.WaitBypasses(4) {
		t.Fatal("bypasses did not re-form after replacement")
	}
	time.Sleep(100 * time.Millisecond)
	// Port counters must not have regressed (folded + live merge).
	if v, ok := node.PortStats(1); !ok || v.RxPackets < before {
		t.Fatalf("port stats regressed: %d < %d", v.RxPackets, before)
	}
}
