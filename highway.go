// Package highway is the public API of the transparent inter-VNF
// communication highway: a reproduction of "A Transparent Highway for
// inter-Virtual Network Function Communication with Open vSwitch"
// (SIGCOMM 2016).
//
// A Node is a complete simulated NFV compute node: an OVS-DPDK-style
// vSwitch, a compute agent managing VM contexts, and — in highway mode —
// the p-2-p link detector and bypass manager that transparently replace
// VM→vSwitch→VM paths with direct VM-to-VM shared-memory channels whenever
// the OpenFlow rules describe a point-to-point link.
//
// Quick start:
//
//	node, _ := highway.Start(highway.Config{Mode: highway.ModeHighway})
//	defer node.Stop()
//	chain, _ := node.DeployBidirChain(3, highway.ChainOptions{})
//	defer chain.Stop()
//	node.WaitBypasses(8)                  // 4 hops × 2 directions
//	mpps := chain.MeasureMpps(time.Second)
package highway

import (
	"net"
	"time"

	"ovshighway/internal/agent"
	"ovshighway/internal/graph"
	"ovshighway/internal/nic"
	"ovshighway/internal/orchestrator"
	"ovshighway/internal/pkt"
	"ovshighway/internal/vswitch"
)

// Mode selects the datapath variant.
type Mode = orchestrator.Mode

// Datapath modes.
const (
	// ModeVanilla is the baseline: every packet crosses the vSwitch
	// forwarding engine (vanilla OVS-DPDK behaviour).
	ModeVanilla = orchestrator.ModeVanilla
	// ModeHighway enables the paper's system: point-to-point steering rules
	// are detected at run time and served by direct VM-to-VM channels.
	ModeHighway = orchestrator.ModeHighway
)

// Graph re-exports the service-graph model for custom topologies.
type Graph = graph.Graph

// Config parametrizes Start. Zero values take sensible defaults.
type Config struct {
	Mode Mode
	// NumPMDs is the number of vSwitch forwarding threads (default 1; the
	// paper's baseline contends on these).
	NumPMDs int
	// EMCDisabled turns off the vSwitch exact-match cache (ablation A1).
	EMCDisabled bool
	// SMCDisabled turns off the vSwitch signature-match cache, the second
	// lookup tier between the EMC and the classifier (ablation A5).
	SMCDisabled bool
	// ECMPAdaptiveDisabled pins every ECMP flow to its static hash pick,
	// ignoring the per-path congestion signal — the baseline arm of the
	// incast experiment.
	ECMPAdaptiveDisabled bool
	// RingSize is the dpdkr/bypass ring capacity (default 1024).
	RingSize int
	// PoolSize is the packet-buffer population (default 8192).
	PoolSize int
	// HotplugDelay/ConfigDelay emulate QEMU ivshmem hot-plug and
	// virtio-serial latencies; with QEMU-realistic values (tens of ms) the
	// end-to-end bypass setup time lands near the paper's ~100 ms.
	HotplugDelay time.Duration
	ConfigDelay  time.Duration
	// OpenFlowAddr, when non-empty (e.g. "127.0.0.1:6653"), starts an
	// OpenFlow 1.3 controller listener for external controllers.
	OpenFlowAddr string
	// OnBypassUp observes each bypass establishment and its setup latency.
	OnBypassUp func(from, to uint32, setup time.Duration)
	// NumQueues is the RSS queue count of every VM-facing dpdkr port: the
	// guest PMD hashes each flow onto one of NumQueues rings, and the
	// vSwitch homes each ring on a forwarding thread independently. Default
	// 1 (classic single-queue ports).
	NumQueues int
	// AutoBalance runs the datapath load balancer: per-PMD busy fractions
	// are sampled every BalanceInterval and RX queues re-home off the
	// hottest thread when the busy-fraction spread exceeds BalanceSpread
	// (zero values default to 100ms and 0.2).
	AutoBalance     bool
	BalanceInterval time.Duration
	BalanceSpread   float64
	// ConntrackCapacity/ConntrackIdle size the connection table each
	// stateful VNF (NAT44, ACL, balancer) gets when it deploys. Zero values
	// take the defaults: 65536 entries, 30s idle timeout. Each table is
	// preallocated in one arena — lookups and inserts never touch the heap.
	ConntrackCapacity int
	ConntrackIdle     time.Duration
}

// Node is a running NFV node.
type Node struct {
	inner *orchestrator.Node
	ofsrv *vswitch.OFServer
}

// nodeConfig lowers the public Config to the orchestrator's NodeConfig —
// the single mapping Start and StartCluster both use, so node and cluster
// deployments can never diverge on a config field.
func (cfg Config) nodeConfig() orchestrator.NodeConfig {
	return orchestrator.NodeConfig{
		Mode: cfg.Mode,
		Switch: vswitch.Config{
			NumPMDs:              cfg.NumPMDs,
			EMCDisabled:          cfg.EMCDisabled,
			SMCDisabled:          cfg.SMCDisabled,
			ECMPAdaptiveDisabled: cfg.ECMPAdaptiveDisabled,
		},
		Agent: agent.Config{
			HotplugDelay: cfg.HotplugDelay,
			ConfigDelay:  cfg.ConfigDelay,
		},
		RingSize:        cfg.RingSize,
		PoolSize:        cfg.PoolSize,
		OnBypassUp:      cfg.OnBypassUp,
		NumQueues:       cfg.NumQueues,
		AutoBalance:     cfg.AutoBalance,
		BalanceInterval: cfg.BalanceInterval,
		BalanceSpread:   cfg.BalanceSpread,

		ConntrackCapacity: cfg.ConntrackCapacity,
		ConntrackIdle:     cfg.ConntrackIdle,
	}
}

// Start boots a node: switch PMDs running, agent ready, and (in highway
// mode) detector and bypass manager live.
func Start(cfg Config) (*Node, error) {
	inner, err := orchestrator.NewNode(cfg.nodeConfig())
	if err != nil {
		return nil, err
	}
	n := &Node{inner: inner}
	if cfg.OpenFlowAddr != "" {
		ln, err := net.Listen("tcp", cfg.OpenFlowAddr)
		if err != nil {
			inner.Stop()
			return nil, err
		}
		n.ofsrv = vswitch.NewOFServer(inner.Switch, ln)
		go n.ofsrv.Serve()
	}
	return n, nil
}

// Stop shuts the node down: bypasses torn down, PMD threads joined, the
// OpenFlow listener closed.
func (n *Node) Stop() {
	if n.ofsrv != nil {
		n.ofsrv.Close()
	}
	n.inner.Stop()
}

// Mode returns the node's datapath mode.
func (n *Node) Mode() Mode { return n.inner.Mode() }

// OpenFlowAddr returns the controller listener address ("" if not enabled).
func (n *Node) OpenFlowAddr() string {
	if n.ofsrv == nil {
		return ""
	}
	return n.ofsrv.Addr().String()
}

// BypassCount reports the number of live bypass channels.
func (n *Node) BypassCount() int { return n.inner.Switch.BypassLinkCount() }

// WaitBypasses blocks (bounded) until exactly want bypasses are live.
func (n *Node) WaitBypasses(want int) bool { return n.inner.WaitBypassCount(want) }

// PortStats returns the OpenFlow-visible counters for a port, with bypass
// traffic merged in (the paper's stats transparency).
func (n *Node) PortStats(id uint32) (vswitch.PortStatsView, bool) {
	return n.inner.Switch.PortStats(id)
}

// FlowStats returns the OpenFlow-visible flow entries with merged counters.
func (n *Node) FlowStats() []vswitch.FlowStatsView {
	return n.inner.Switch.FlowStats()
}

// AddNIC attaches a simulated 10G NIC under the given graph-visible name.
// rate 0 means 64B line rate (14.88 Mpps); negative means unlimited.
func (n *Node) AddNIC(name string, rate float64) (*nic.NIC, error) {
	return n.inner.AddNIC(name, nic.Config{RatePps: rate})
}

// Deploy lowers an arbitrary service graph onto the node.
func (n *Node) Deploy(g *Graph) (*Deployment, error) {
	d, err := n.inner.Deploy(g)
	if err != nil {
		return nil, err
	}
	return &Deployment{inner: d}, nil
}

// Internal returns the underlying orchestrator node, for advanced callers
// (the benchmark harness reaches through this).
func (n *Node) Internal() *orchestrator.Node { return n.inner }

// Deployment is a deployed service graph.
type Deployment struct {
	inner *orchestrator.Deployment
}

// Stop tears the deployment down (flows deleted, bypasses dissolved, VMs
// destroyed).
func (d *Deployment) Stop() { d.inner.Stop() }

// Internal returns the underlying deployment.
func (d *Deployment) Internal() *orchestrator.Deployment { return d.inner }

// DefaultTrafficSpec returns the canonical 64-byte UDP workload used by the
// paper's evaluation.
func DefaultTrafficSpec() pkt.UDPSpec { return orchestrator.DefaultTrafficSpec() }
