// Command benchjson converts `go test -bench` text output into JSON so
// bench baselines can be consumed by dashboards and scripts without
// re-parsing the textual format. It reads bench text from stdin (or the
// files named as arguments) and writes one JSON object per benchmark line:
//
//	go test -bench . -benchmem -count 5 . | tee BENCH_head.txt | benchjson > BENCH_head.json
//	benchjson BENCH_pr8.txt > BENCH_pr8.json
//
// Context lines (goos/goarch/pkg/cpu) are folded into every record; metric
// suffixes (ns/op, MB/s, B/op, allocs/op, and any custom unit) become
// fields of a metrics map, so repeated -count runs stay separate records
// for variance-aware consumers like benchstat.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// record is one benchmark result line.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
}

func main() {
	if len(os.Args) > 1 {
		for _, path := range os.Args[1:] {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			err = convert(f, os.Stdout)
			f.Close()
			if err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// convert streams bench text from r to JSON lines on w.
func convert(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	enc := json.NewEncoder(w)
	var ctx record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			ctx.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			ctx.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			ctx.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			ctx.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			rec, ok := parseBench(line, ctx)
			if !ok {
				continue // PASS/FAIL markers, truncated lines
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

// parseBench decodes one "BenchmarkName  N  v1 unit1  v2 unit2 ..." line.
func parseBench(line string, ctx record) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := ctx
	rec.Name = fields[0]
	rec.Iterations = iters
	rec.Metrics = make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}
