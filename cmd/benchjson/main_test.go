package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ovshighway
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEMCLookup/emc    	65156317	        16.43 ns/op	       0 B/op	       0 allocs/op
BenchmarkPMDBatch/ecmp-adaptive 	  278048	      8312 ns/op	   3.85 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	ovshighway	12.3s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d records, want 2:\n%s", len(lines), out.String())
	}
	var recs []record
	for _, l := range lines {
		var r record
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("record not valid JSON: %v\n%s", err, l)
		}
		recs = append(recs, r)
	}
	first := recs[0]
	if first.Name != "BenchmarkEMCLookup/emc" || first.Iterations != 65156317 {
		t.Fatalf("first record mis-parsed: %+v", first)
	}
	if first.Goos != "linux" || first.Pkg != "ovshighway" || first.CPU == "" {
		t.Fatalf("context not folded into record: %+v", first)
	}
	if first.Metrics["ns/op"] != 16.43 || first.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics mis-parsed: %+v", first.Metrics)
	}
	second := recs[1]
	if second.Name != "BenchmarkPMDBatch/ecmp-adaptive" {
		t.Fatalf("second record mis-parsed: %+v", second)
	}
	if second.Metrics["MB/s"] != 3.85 || second.Metrics["ns/op"] != 8312 {
		t.Fatalf("throughput metric mis-parsed: %+v", second.Metrics)
	}
}

func TestConvertSkipsNonBenchLines(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader("PASS\nok  \tovshighway\t1.0s\nBenchmarkBroken notanumber\n"), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("junk input produced records: %s", out.String())
	}
}
