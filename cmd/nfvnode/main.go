// Command nfvnode runs a complete simulated NFV node: vSwitch, compute
// agent, and (in highway mode) the p-2-p detector and bypass manager, with
// an OpenFlow 1.3 listener for external controllers (e.g. cmd/ofctl).
//
// Optionally it deploys a benchmark chain and reports live throughput and
// bypass state once per second.
//
// Usage:
//
//	nfvnode -mode highway -of 127.0.0.1:6653 -chain 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ovshighway"
	"ovshighway/internal/orchestrator"
)

func main() {
	var (
		modeStr = flag.String("mode", "highway", "datapath mode: vanilla | highway")
		ofAddr  = flag.String("of", "127.0.0.1:6653", "OpenFlow listener address (empty to disable)")
		chain   = flag.Int("chain", 0, "deploy a bidirectional benchmark chain of N forwarder VMs")
		nicLen  = flag.Int("nicchain", 0, "deploy a NIC-attached chain of N forwarder VMs instead")
		graphF  = flag.String("graph", "", "deploy a service graph from a JSON file (see internal/orchestrator/graphjson.go)")
		pmds    = flag.Int("pmds", 1, "vSwitch PMD threads")
		flows   = flag.Int("flows", 4, "distinct generated 5-tuples")
		hotplug = flag.Duration("hotplug-delay", 0, "emulated QEMU ivshmem hot-plug latency")
		cfgDel  = flag.Duration("config-delay", 0, "emulated virtio-serial config latency")
	)
	flag.Parse()

	mode := highway.ModeHighway
	switch *modeStr {
	case "highway":
	case "vanilla":
		mode = highway.ModeVanilla
	default:
		log.Fatalf("unknown mode %q", *modeStr)
	}

	node, err := highway.Start(highway.Config{
		Mode:         mode,
		NumPMDs:      *pmds,
		OpenFlowAddr: *ofAddr,
		HotplugDelay: *hotplug,
		ConfigDelay:  *cfgDel,
		OnBypassUp: func(from, to uint32, setup time.Duration) {
			log.Printf("bypass %d→%d active (setup %v)", from, to, setup)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Stop()
	log.Printf("node up: mode=%s openflow=%s", mode, node.OpenFlowAddr())

	var c *highway.Chain
	switch {
	case *chain > 0:
		c, err = node.DeployBidirChain(*chain, highway.ChainOptions{Flows: *flows})
	case *nicLen > 0:
		c, err = node.DeployNICChain(*nicLen, highway.ChainOptions{Flows: *flows})
	case *graphF != "":
		data, rerr := os.ReadFile(*graphF)
		if rerr != nil {
			log.Fatal(rerr)
		}
		g, perr := orchestrator.ParseGraphJSON(data)
		if perr != nil {
			log.Fatal(perr)
		}
		var d *highway.Deployment
		d, err = node.Deploy(g)
		if err == nil {
			defer d.Stop()
			log.Printf("graph %s deployed: %d VNFs, %d edges", *graphF, len(g.VNFs), len(g.Edges))
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if c != nil {
		defer c.Stop()
		log.Printf("chain deployed: %d forwarder VMs, expecting %d bypasses in highway mode",
			c.Length(), c.ExpectedBypasses())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			log.Print("shutting down")
			return
		case <-tick.C:
			if c != nil {
				fmt.Printf("throughput: %7.3f Mpps  bypasses: %d\n",
					c.RatePps()/1e6, node.BypassCount())
				c.ResetWindow()
			} else {
				fmt.Printf("bypasses: %d\n", node.BypassCount())
			}
		}
	}
}
