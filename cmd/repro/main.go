// Command repro regenerates every table and figure of the paper's
// evaluation section and prints them as aligned text series, paper-style.
//
// Usage:
//
//	repro                 # everything
//	repro -exp fig3a      # one experiment (run repro -h for the list)
//	repro -window 1s      # longer measurement windows for stabler numbers
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ovshighway"
)

// experiments is the single registry every -exp surface derives from — the
// flag help, the unknown-exp error and the dispatch loop — so a new arm is
// added in exactly one place. Order is run order under -exp all; arms with
// inAll=false (the strict pass/fail gate) run only when named explicitly:
// a noisy host failing a gate criterion must not kill the default table
// run.
var experiments = []struct {
	name  string
	inAll bool
	run   func(highway.ExperimentConfig) error
}{
	{"fig3a", true, fig3a},
	{"fig3b", true, fig3b},
	{"multinode", true, multinode},
	{"wlatency", true, wlatency},
	{"fabric", true, fabric},
	{"incast", true, incast},
	{"flowscale", true, flowscale},
	{"pmdscale", true, pmdscale},
	{"heal", true, heal},
	{"migrate", true, migrate},
	{"rebalance", true, rebalance},
	{"conntrack", true, conntrackScale},
	{"latency", true, latency},
	{"setup", true, func(highway.ExperimentConfig) error { return setup() }},
	{"check", false, check},
}

// expNames renders the registry as "all | fig3a | ..." for help and errors.
func expNames() string {
	names := make([]string, 0, len(experiments)+1)
	names = append(names, "all")
	for _, e := range experiments {
		names = append(names, e.name)
	}
	return strings.Join(names, " | ")
}

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: "+expNames())
		warmup = flag.Duration("warmup", 200*time.Millisecond, "per-point warm-up")
		window = flag.Duration("window", 500*time.Millisecond, "per-point measurement window")
		flows  = flag.Int("flows", 4, "distinct generated 5-tuples")
	)
	flag.Parse()

	known := *exp == "all"
	for _, e := range experiments {
		if e.name == *exp {
			known = true
		}
	}
	if !known {
		log.Fatalf("unknown -exp %q (want %s)", *exp, expNames())
	}

	cfg := highway.ExperimentConfig{Warmup: *warmup, Window: *window, Flows: *flows}

	for _, e := range experiments {
		if *exp == e.name || (*exp == "all" && e.inAll) {
			if err := e.run(cfg); err != nil {
				log.Fatalf("%s: %v", e.name, err)
			}
		}
	}
}

// check is the fast pass/fail regression gate for the paper's headline
// claim: highway strictly beats vanilla, and the gap widens with chain
// length. It measures two Figure 3(a) points instead of the full sweep.
func check(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Check: highway ≫ vanilla, gap widening with chain length ===")
	speedup := func(vms int) (float64, error) {
		v, err := highway.RunFig3aPoint(vms, highway.ModeVanilla, cfg)
		if err != nil {
			return 0, err
		}
		h, err := highway.RunFig3aPoint(vms, highway.ModeHighway, cfg)
		if err != nil {
			return 0, err
		}
		s := h.Mpps / v.Mpps
		fmt.Printf("%8d VMs: vanilla %.3f Mpps, highway %.3f Mpps (%.2fx)\n", vms, v.Mpps, h.Mpps, s)
		if s <= 1 {
			return s, fmt.Errorf("highway not faster than vanilla at %d VMs (%.2fx)", vms, s)
		}
		return s, nil
	}
	short, err := speedup(3)
	if err != nil {
		return err
	}
	long, err := speedup(8)
	if err != nil {
		return err
	}
	if long <= short {
		return fmt.Errorf("gap did not widen with chain length (%.2fx at 3 VMs vs %.2fx at 8)", short, long)
	}
	fmt.Printf("PASS: gap widens %.2fx → %.2fx\n", short, long)

	// Datapath sanity on a churned flow-scale point: clean synthetic
	// traffic must produce zero parse errors, and the EMC must survive
	// unrelated delete churn (death-mark invalidation, not a cache flush).
	row, err := highway.RunFlowScalePoint(1024, 500, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("datapath: emc %.1f%% smc %.1f%% dedup %.1f%% classifier %.1f%%, parse errors %d\n",
		row.EMCPct, row.SMCPct, row.DedupPct, row.ClsPct, row.ParseErrors)
	if row.ParseErrors != 0 {
		return fmt.Errorf("parse errors on clean traffic: %d", row.ParseErrors)
	}
	if row.EMCPct < 90 {
		return fmt.Errorf("EMC hit rate %.1f%% under delete churn, want >90%% (death-mark invalidation broken?)", row.EMCPct)
	}
	fmt.Println("PASS: EMC >90% under unrelated delete churn, no parse errors")
	fmt.Println()
	return nil
}

func fabric(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Switched-core fabric: ECMP multi-trunk lanes, spine relay, PCP lane QoS ===")

	// Arm 1: cross-node throughput vs ECMP bundle width at the SAME
	// per-trunk rate. The 3-node chain crosses two rate-limited adjacencies;
	// wider bundles carry more because flows hash-spread across the paths.
	const perTrunkRate = 100_000.0
	const vms = 6
	fmt.Printf("--- uplink-bound 3-node chain (%d VMs, %.0f kpps per trunk per direction) ---\n",
		vms, perTrunkRate/1e3)
	fmt.Printf("%8s %10s   %s\n", "fabric", "Mpps", "per-path carried/dropped (both directions)")
	for _, width := range []int{1, 2, 4} {
		r, err := highway.RunFabricThroughputPoint(vms, width, perTrunkRate, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %10.3f   ", r.Topology, r.Mpps)
		for i, p := range r.Paths {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%s:%d/%d", p.Name, p.Carried, p.Dropped)
		}
		fmt.Println()
	}

	// Arm 2: mesh vs spine latency. The leaf–leaf lane relays through the
	// spine's vSwitch, paying the propagation delay and a forwarding hop
	// twice. The delay is chosen large enough to clear the ~16 ms queueing
	// floor a loaded 1-core host adds (the histogram is log₂-bucketed, so
	// the 2× hop count must cross a bucket boundary to be visible).
	const wireLat = 50 * time.Millisecond
	fmt.Printf("--- leaf–leaf chain, mesh vs spine relay (4 VMs, %v wire delay per hop) ---\n", wireLat)
	fmt.Printf("%8s %10s %12s %12s %8s\n", "fabric", "Mpps", "p50", "p99", "paths")
	for _, mode := range []highway.FabricMode{highway.FabricMesh, highway.FabricSpine} {
		r, err := highway.RunFabricLatencyPoint(4, mode, wireLat, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8s %10.3f %12v %12v %8d\n",
			r.Topology, r.Mpps, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), len(r.Paths))
	}

	// Arm 3: PCP-weighted lane QoS. Two chains saturate one shared trunk
	// from classes weighted 2:1; goodput must split accordingly.
	fmt.Println("--- lane QoS: two saturating chains, PCP 6 weight 2 vs PCP 0 weight 1 ---")
	q, err := highway.RunFabricQoS(perTrunkRate, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %16s %16s\n", "class", "Mpps", "trunk carried", "trunk dropped")
	fmt.Printf("%8s %10.3f %16d %16d\n", "pcp6 w2", q.HiMpps, q.HiCarried, q.HiDropped)
	fmt.Printf("%8s %10.3f %16d %16d\n", "pcp0 w1", q.LoMpps, q.LoCarried, q.LoDropped)
	fmt.Printf("goodput ratio %.2f:1 (want ≈2:1)\n", q.Ratio)
	fmt.Println()
	return nil
}

func incast(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Incast: congestion-aware adaptive ECMP repick vs static hash pinning ===")
	fmt.Println("    (2-spine Clos, 4 nodes; background chains incast onto spine-1 from both")
	fmt.Println("     leaves; the measured leaf–leaf chain ECMPs over both spine paths and")
	fmt.Println("     the adaptive arm must shift it onto the quiet spine at flowlet gaps)")
	const perTrunkRate = 100_000.0
	rows, err := highway.RunIncast(perTrunkRate, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %12s %12s %9s   %s\n",
		"arm", "Mpps", "p50", "p99", "repicks", "per-path carried/dropped (both directions)")
	for _, r := range rows {
		fmt.Printf("%10s %10.3f %12v %12v %9d   ",
			r.Arm, r.Mpps, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.Repicks)
		for i, p := range r.Paths {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%s:%d/%d", p.Name, p.Carried, p.Dropped)
		}
		fmt.Println()
	}
	if len(rows) == 2 {
		st, ad := rows[0], rows[1]
		fmt.Printf("adaptive vs static: p99 %v → %v, %.3f → %.3f Mpps, %d repicks\n",
			st.P99.Round(time.Microsecond), ad.P99.Round(time.Microsecond), st.Mpps, ad.Mpps, ad.Repicks)
	}
	fmt.Println()
	return nil
}

func flowscale(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Flow scale: distinct 5-tuples × flow-table delete churn ===")
	fmt.Println("    (tier shift as flows outgrow each cache: EMC → SMC → classifier;")
	fmt.Println("     unrelated delete churn barely dents it — death-mark invalidation)")
	fmt.Printf("%8s %10s %10s %8s %8s %8s %8s %12s\n",
		"flows", "churn/s", "Mpps", "emc%", "smc%", "dedup%", "cls%", "pmd busy")
	for _, churn := range []int{0, 1000} {
		for _, flows := range []int{64, 1024, 4096, 16384, 65536} {
			r, err := highway.RunFlowScalePoint(flows, churn, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%8d %10d %10.3f %7.1f%% %7.1f%% %7.1f%% %7.1f%%   %s\n",
				r.Flows, r.ChurnPerSec, r.Mpps, r.EMCPct, r.SMCPct, r.DedupPct, r.ClsPct,
				busyList(r.PMDBusy))
		}
	}

	// Skewed traffic: persistent elephants plus an endless stream of
	// one-shot mice (fresh ephemeral ports, never seen twice). With
	// unconditional insertion every mouse claims an EMC slot it will never
	// use again, evicting a live elephant to do so; the OVS
	// emc-insert-inv-prob policy (1-in-N insertion) suppresses exactly
	// those evictions — watch the conflicts column collapse while
	// throughput rises. (SMC off and a small EMC put the pressure where the
	// policy acts.)
	fmt.Println("    Zipf-skewed traffic (s=1.25): 256 persistent elephants, the cold")
	fmt.Println("    half of the ranks replaced by one-shot mice; 1k-entry EMC, SMC off")
	fmt.Println("    — emc-insert-inv-prob sweep:")
	fmt.Printf("%8s %10s %8s %8s %14s\n", "invprob", "Mpps", "emc%", "cls%", "live evictions")
	for _, inv := range []int{1, 50} {
		zcfg := cfg
		zcfg.ZipfSkew = 1.25
		zcfg.EMCInsertInvProb = inv
		zcfg.EMCEntries = 1024
		zcfg.SMCDisabled = true
		r, err := highway.RunFlowScalePoint(512, 0, zcfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %10.3f %7.1f%% %7.1f%% %14d\n",
			inv, r.Mpps, r.EMCPct, r.ClsPct, r.EMCConflicts)
	}
	fmt.Println()
	return nil
}

// busyList renders per-PMD busy fractions as "53%/2%/..." for table cells.
func busyList(fracs []float64) string {
	if len(fracs) == 0 {
		return "-"
	}
	s := ""
	for i, f := range fracs {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%.0f%%", 100*f)
	}
	return s
}

func pmdscale(cfg highway.ExperimentConfig) error {
	fmt.Println("=== PMD scale: Mpps vs forwarding threads × RSS queues × auto-balancer ===")
	fmt.Println("    (single hot port, every queue first skewed onto PMD 0; one queue can")
	fmt.Println("     never use more than one PMD, and without the balancer neither can k)")
	fmt.Printf("%6s %8s %10s %10s %14s %13s %7s\n",
		"PMDs", "queues", "balancer", "Mpps", "spread before", "spread after", "moves")
	rows, err := highway.RunPMDScale(cfg)
	if err != nil {
		return err
	}
	for _, r := range rows {
		bal := "off"
		if r.Balanced {
			bal = "on"
		}
		fmt.Printf("%6d %8d %10s %10.3f %13.1f%% %12.1f%% %7d\n",
			r.PMDs, r.Queues, bal, r.Mpps, 100*r.SpreadBefore, 100*r.SpreadAfter, r.Moves)
	}
	fmt.Println()
	return nil
}

func heal(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Self-healing: fault injection vs the declarative reconciler ===")
	fmt.Println("    (3-node highway cluster, ECMP×2 fabric, live split chain; after each")
	fmt.Println("     fault the reconciler alone restores full throughput — no redeploy)")
	rows, err := highway.RunHeal(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%18s %8s %9s %12s %12s %14s\n",
		"fault", "passes", "repairs", "converge", "base Mpps", "recovered Mpps")
	for _, r := range rows {
		fmt.Printf("%18s %8d %9d %12v %12.3f %14.3f\n",
			r.Fault, r.Passes, r.Repairs, r.Converge.Round(time.Microsecond),
			r.BaseMpps, r.RecoveredMpps)
	}
	fmt.Println()
	return nil
}

func migrate(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Live VNF migration: make-before-break double-steering, zero loss ===")
	fmt.Println("    (paced split chain; the VNF moves to a third node mid-stream and the")
	fmt.Println("     sent-minus-received ledger across the cutover must not change)")
	r, err := highway.RunMigrate(cfg)
	if err != nil {
		return err
	}
	drained := "drained"
	if !r.Drained {
		drained = "DRAIN DEADLINE EXPIRED"
	}
	fmt.Printf("%s: %s → %s  cutover %v  %s  packets lost %d  %.3f → %.3f Mpps  bypasses %d\n",
		r.VNF, r.From, r.To, r.Cutover.Round(time.Microsecond), drained, r.Lost,
		r.BaseMpps, r.AfterMpps, r.BypassesAfter)
	if r.Lost != 0 {
		return fmt.Errorf("migration lost %d packets", r.Lost)
	}
	fmt.Println("PASS: zero packets lost across the cutover")
	fmt.Println()
	return nil
}

func rebalance(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Rolling re-placement: drift-driven rebalancing, zero loss ===")
	fmt.Println("    (split chain with two middles deliberately drifted across the fabric;")
	fmt.Println("     the controller repairs the layout through rolling migrations — one in")
	fmt.Println("     flight at a time — and the conservation ledger brackets the whole run;")
	fmt.Println("     -window sets the controller's load-sampling interval)")
	r, err := highway.RunRebalance(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %10s %12s %10s\n", "vnf", "from", "to", "cutover", "drained")
	for _, mv := range r.Moves {
		drained := "yes"
		if !mv.Report.Drained {
			drained = "DEADLINE EXPIRED"
		}
		fmt.Printf("%8s %10s %10s %12v %10s\n",
			mv.VNF, mv.From, mv.To, mv.Report.Cutover.Round(time.Microsecond), drained)
	}
	fmt.Printf("crossings %d → %d  converged in %v  packets lost %d  %.3f → %.3f Mpps\n",
		r.CrossBefore, r.CrossAfter, r.Converge.Round(time.Millisecond), r.Lost,
		r.BaseMpps, r.AfterMpps)
	fmt.Printf("controller: passes %d  moves %d  damped %d  deferred %d  errors %d  max in flight %d\n",
		r.Stats.Passes, r.Stats.Moves, r.Stats.Damped, r.Stats.Deferred,
		r.Stats.Errors, r.Stats.MaxInFlight)
	if r.Lost != 0 {
		return fmt.Errorf("rebalance lost %d packets", r.Lost)
	}
	if r.CrossAfter >= r.CrossBefore {
		return fmt.Errorf("rebalance did not converge: %d → %d crossings", r.CrossBefore, r.CrossAfter)
	}
	if r.Stats.MaxInFlight > 1 {
		return fmt.Errorf("rebalance ran %d migrations concurrently", r.Stats.MaxInFlight)
	}
	if r.Stats.Errors != 0 {
		return fmt.Errorf("rebalance controller recorded %d errors", r.Stats.Errors)
	}
	fmt.Println("PASS: layout converged, zero packets lost, one migration in flight")
	fmt.Println()
	return nil
}

func conntrackScale(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Conntrack scale: concurrent connections 64k → 4M ===")
	fmt.Println("    (table pre-seeded, then live traffic through an ACL VNF: 15/16 of")
	fmt.Println("     frames ride the established bypass, 1/16 are first packets taking")
	fmt.Println("     the classifier walk; each point audits per-shard vs global stats")
	fmt.Println("     and requires every seeded connection to still be live)")
	fmt.Printf("%10s %12s %10s %8s %8s %8s %8s %8s %10s\n",
		"conns", "seed Mc/s", "Mpps", "ct-hit%", "ct-miss%", "emc%", "smc%", "cls%", "live")
	rows, err := highway.RunConntrack(cfg)
	for _, r := range rows {
		fmt.Printf("%10d %12.2f %10.3f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10d\n",
			r.Conns, r.SeedMconnsPerSec, r.Mpps, r.CTHitPct, r.CTMissPct,
			r.EMCPct, r.SMCPct, r.ClsPct, r.Live)
	}
	if err != nil {
		return err
	}
	fmt.Println("PASS: all seeded connections live at every point, shard sums consistent")
	fmt.Println()
	return nil
}

func fig3a(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Figure 3(a): memory-only chains, bidirectional 64B traffic ===")
	fmt.Println("    (paper: log-scale Mpps, 2..8 VMs; vanilla decays, highway stays high)")
	fmt.Printf("%8s %22s %22s %8s\n", "# VMs", "vanilla OvS-DPDK [Mpps]", "our approach [Mpps]", "speedup")
	for vms := 2; vms <= 8; vms++ {
		v, err := highway.RunFig3aPoint(vms, highway.ModeVanilla, cfg)
		if err != nil {
			return err
		}
		h, err := highway.RunFig3aPoint(vms, highway.ModeHighway, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %22.3f %22.3f %7.2fx\n", vms, v.Mpps, h.Mpps, h.Mpps/v.Mpps)
	}
	fmt.Println()
	return nil
}

func fig3b(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Figure 3(b): chains behind two 10G NICs (14.88 Mpps line rate each) ===")
	fmt.Println("    (paper: 4..20 Mpps linear scale, 1..8 VMs)")
	fmt.Printf("%8s %22s %22s %8s\n", "# VMs", "vanilla OvS-DPDK [Mpps]", "our approach [Mpps]", "speedup")
	for vms := 1; vms <= 8; vms++ {
		v, err := highway.RunFig3bPoint(vms, highway.ModeVanilla, cfg)
		if err != nil {
			return err
		}
		h, err := highway.RunFig3bPoint(vms, highway.ModeHighway, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %22.3f %22.3f %7.2fx\n", vms, v.Mpps, h.Mpps, h.Mpps/v.Mpps)
	}
	fmt.Println()
	return nil
}

func wlatency(cfg highway.ExperimentConfig) error {
	const vms = 6
	fmt.Println("=== Wire latency: 2-node split chain vs trunk propagation delay ===")
	fmt.Printf("    (%d VMs, one trunk crossing; delay adds a mode-independent floor,\n", vms)
	fmt.Println("     so the highway's latency edge shrinks while its throughput edge survives)")
	fmt.Printf("%10s %12s %12s %12s %12s %10s %10s\n",
		"wire delay", "vanilla p50", "highway p50", "vanilla p99", "highway p99",
		"van Mpps", "hw Mpps")
	for _, lat := range []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond} {
		v, err := highway.RunWireLatencyPoint(vms, lat, highway.ModeVanilla, cfg)
		if err != nil {
			return err
		}
		h, err := highway.RunWireLatencyPoint(vms, lat, highway.ModeHighway, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%10v %12v %12v %12v %12v %10.3f %10.3f\n",
			lat, v.P50.Round(time.Microsecond), h.P50.Round(time.Microsecond),
			v.P99.Round(time.Microsecond), h.P99.Round(time.Microsecond),
			v.Mpps, h.Mpps)
	}
	fmt.Println()
	return nil
}

func multinode(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Multi-node: bidirectional chains split across 2 nodes sharing a 10G trunk ===")
	fmt.Println("    (beyond the paper: intra-node hops still bypass; the wire hop cannot)")
	fmt.Printf("%8s %9s %22s %22s %8s %9s\n",
		"# VMs", "split", "vanilla cluster [Mpps]", "highway cluster [Mpps]", "speedup", "bypasses")
	for vms := 3; vms <= 8; vms++ {
		v, err := highway.RunMultiNodePoint(vms, highway.ModeVanilla, cfg)
		if err != nil {
			return err
		}
		h, err := highway.RunMultiNodePoint(vms, highway.ModeHighway, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%8d %6d+%-2d %22.3f %22.3f %7.2fx %9d\n",
			vms, h.Segments[0], h.Segments[1], v.Mpps, h.Mpps, h.Mpps/v.Mpps, h.Bypasses)
	}
	fmt.Println()
	return nil
}

func latency(cfg highway.ExperimentConfig) error {
	fmt.Println("=== Latency (E3): one-way latency under bidirectional load ===")
	fmt.Println("    (paper: ~80% improvement at 8 VMs; detailed results omitted there)")
	fmt.Printf("%8s %14s %14s %14s %14s %12s\n",
		"# VMs", "vanilla p50", "highway p50", "vanilla p99", "highway p99", "p50 improv")
	for _, vms := range []int{2, 3, 4, 5, 6, 7, 8} {
		v, err := highway.RunLatencyPoint(vms, highway.ModeVanilla, cfg)
		if err != nil {
			return err
		}
		h, err := highway.RunLatencyPoint(vms, highway.ModeHighway, cfg)
		if err != nil {
			return err
		}
		improv := 100 * (1 - float64(h.P50)/float64(v.P50))
		fmt.Printf("%8d %14v %14v %14v %14v %11.1f%%\n",
			vms, v.P50, h.P50, v.P99, h.P99, improv)
	}
	fmt.Println()
	return nil
}

func setup() error {
	fmt.Println("=== Setup time (E4): flow-mod analysis → PMD using the bypass ===")
	fmt.Println("    (paper: \"on the order of 100 ms\", dominated by QEMU/virtio plumbing)")
	fmt.Printf("%-18s %10s %12s %12s %12s\n", "emulation", "samples", "min", "mean", "max")
	cases := []struct {
		name            string
		hotplug, config time.Duration
	}{
		{"qemu-realistic", 30 * time.Millisecond, 5 * time.Millisecond},
		{"fast-hypervisor", 5 * time.Millisecond, time.Millisecond},
		{"no-emulation", 0, 0},
	}
	for _, c := range cases {
		row, err := highway.RunSetupTime(8, c.hotplug, c.config)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %10d %12v %12v %12v\n",
			c.name, row.Samples, row.Min.Round(time.Microsecond),
			row.Mean.Round(time.Microsecond), row.Max.Round(time.Microsecond))
	}
	fmt.Println()
	return nil
}
