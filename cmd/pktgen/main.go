// Command pktgen is a real-socket UDP traffic generator and sink, useful
// for exercising this repository's packet builders against an actual
// network stack and for generating external load.
//
// Usage:
//
//	pktgen -send 127.0.0.1:9000 -rate 100000 -duration 5s -size 64
//	pktgen -send 127.0.0.1:9000 -flows 64 -churn 100   # rotate 5-tuples
//	pktgen -send 127.0.0.1:9000 -conns 256 -churn 50    # connection lifecycle
//	pktgen -recv :9000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		sendAddr = flag.String("send", "", "destination address to blast UDP at")
		recvAddr = flag.String("recv", "", "local address to sink UDP on")
		rate     = flag.Int("rate", 100000, "packets per second (0 = unpaced)")
		duration = flag.Duration("duration", 5*time.Second, "send duration")
		size     = flag.Int("size", 64, "UDP payload size in bytes")
		flows    = flag.Int("flows", 1, "distinct source ports to cycle")
		churn    = flag.Int("churn", 0, "flows/sec whose 5-tuple rotates (0 = stable flows)")
		conns    = flag.Int("conns", 0, "concurrent connections with SYN/FIN-style lifecycle markers (overrides -flows; -churn sets open/close cycling rate)")
	)
	flag.Parse()

	switch {
	case *sendAddr != "":
		if err := send(*sendAddr, *rate, *duration, *size, *flows, *churn, *conns); err != nil {
			log.Fatal(err)
		}
	case *recvAddr != "":
		if err := recv(*recvAddr); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: pktgen -send addr | -recv addr")
		os.Exit(2)
	}
}

func send(addr string, rate int, duration time.Duration, size, flows, churn, nconns int) error {
	// -conns mode: each socket models one connection with an explicit
	// lifecycle — a SYN-style open marker when it dials, FIN-style close
	// marker before it retires — so a stateful device under test (NAT,
	// firewall) sees N concurrent connections opening and closing at the
	// churn rate instead of an anonymous packet stream.
	lifecycle := nconns > 0
	if lifecycle {
		flows = nconns
	}
	if flows < 1 {
		flows = 1
	}
	conns := make([]*net.UDPConn, flows)
	dst, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	for i := range conns {
		c, err := net.DialUDP("udp", nil, dst)
		if err != nil {
			return err
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Lifecycle markers ride the first payload byte: 'S' opens, 'D' is
	// data, 'F' closes. A UDP sink that tracks connections keys on them.
	marker := func(c *net.UDPConn, m byte) error {
		if !lifecycle || len(payload) == 0 {
			return nil
		}
		old := payload[0]
		payload[0] = m
		_, err := c.Write(payload)
		payload[0] = old
		return err
	}
	if lifecycle && len(payload) > 0 {
		payload[0] = 'D'
	}

	var sent, churned, opened, closed uint64
	if lifecycle {
		for _, c := range conns {
			if err := marker(c, 'S'); err != nil {
				return err
			}
			opened++
			sent++
		}
	}
	start := time.Now()
	deadline := start.Add(duration)
	next := 0

	// Churn rotates one flow's 5-tuple every 1/churn seconds by re-dialing
	// its connection (the OS picks a fresh ephemeral source port) — the
	// external-traffic twin of the flowscale experiment's churn axis: old
	// flows go idle and expire, new ones keep arriving.
	var churnEvery time.Duration
	var nextChurn time.Time
	churnIdx := 0
	if churn > 0 {
		churnEvery = time.Second / time.Duration(churn)
		nextChurn = start.Add(churnEvery)
	}
	rotate := func(now time.Time) error {
		if churn <= 0 || !now.After(nextChurn) {
			return nil
		}
		// Cap the catch-up burst: after a long stall the backlog is dropped
		// rather than executed as a re-dial storm that pauses sending.
		const burstCap = 32
		if behind := now.Sub(nextChurn) / churnEvery; behind > burstCap {
			nextChurn = nextChurn.Add((behind - burstCap) * churnEvery)
		}
		for now.After(nextChurn) {
			c, err := net.DialUDP("udp", nil, dst)
			if err != nil {
				return err
			}
			// Close the retiring connection on the wire before the socket:
			// FIN-style marker out, then the replacement announces itself.
			if err := marker(conns[churnIdx], 'F'); err != nil {
				return err
			}
			conns[churnIdx].Close()
			conns[churnIdx] = c
			if err := marker(c, 'S'); err != nil {
				return err
			}
			if lifecycle {
				closed++
				opened++
				sent += 2
			}
			churnIdx = (churnIdx + 1) % flows
			churned++
			nextChurn = nextChurn.Add(churnEvery)
		}
		return nil
	}

	// Pace in 1ms quanta to avoid a per-packet timer.
	quantum := time.Millisecond
	perQuantum := rate / 1000
	if rate == 0 {
		perQuantum = 1 << 30
	}
	for time.Now().Before(deadline) {
		qStart := time.Now()
		if err := rotate(qStart); err != nil {
			return err
		}
		for i := 0; i < perQuantum && time.Now().Before(deadline); i++ {
			if _, err := conns[next].Write(payload); err != nil {
				return err
			}
			next = (next + 1) % flows
			sent++
		}
		if rate > 0 {
			if rem := quantum - time.Since(qStart); rem > 0 {
				time.Sleep(rem)
			}
		}
	}
	if lifecycle {
		// Drain the survivors: every still-open connection closes cleanly.
		for _, c := range conns {
			if err := marker(c, 'F'); err != nil {
				return err
			}
			closed++
			sent++
		}
	}
	el := time.Since(start).Seconds()
	fmt.Printf("sent %d packets in %.2fs (%.0f pps, %.3f Mpps), rotated %d flows\n",
		sent, el, float64(sent)/el, float64(sent)/el/1e6, churned)
	if lifecycle {
		fmt.Printf("connections: %d opened, %d closed, %d concurrent\n", opened, closed, flows)
	}
	return nil
}

func recv(addr string) error {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("sinking UDP on %s (ctrl-c to stop)\n", conn.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	var count, bytes uint64
	buf := make([]byte, 65536)
	start := time.Now()
	last := start
	lastCount := uint64(0)

	conn.SetReadDeadline(time.Now().Add(time.Second))
	for {
		select {
		case <-sig:
			el := time.Since(start).Seconds()
			fmt.Printf("\ntotal: %d packets, %d bytes in %.1fs (%.0f pps)\n",
				count, bytes, el, float64(count)/el)
			return nil
		default:
		}
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				conn.SetReadDeadline(time.Now().Add(time.Second))
			} else {
				return err
			}
		} else {
			count++
			bytes += uint64(n)
		}
		if now := time.Now(); now.Sub(last) >= time.Second {
			fmt.Printf("rate: %d pps\n", count-lastCount)
			last = now
			lastCount = count
		}
	}
}
