// Command ofctl is an ovs-ofctl-like OpenFlow 1.3 client for the nfvnode
// switch (or any OF 1.3 switch speaking this subset).
//
// Usage:
//
//	ofctl [-addr host:port] add-flow  'in_port=1,actions=output:2'
//	ofctl [-addr host:port] del-flows ['in_port=1']
//	ofctl [-addr host:port] dump-flows
//	ofctl [-addr host:port] dump-ports
//	ofctl [-addr host:port] packet-out <in_port> <output_port> <hex-frame>
//	ofctl [-addr host:port] ping
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"ovshighway/internal/flow"
	"ovshighway/internal/openflow"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6653", "switch OpenFlow address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ofctl [-addr host:port] <command> [args]")
		os.Exit(2)
	}

	c, err := openflow.Dial(*addr, 3*time.Second)
	if err != nil {
		log.Fatalf("connect %s: %v", *addr, err)
	}
	defer c.Close()

	switch args[0] {
	case "add-flow":
		requireArgs(args, 2)
		spec, err := parseFlowSpec(args[1])
		if err != nil {
			log.Fatal(err)
		}
		var flags uint16
		if spec.sendRem {
			flags = flow.SendFlowRemoved
		}
		send(c, openflow.FlowMod{
			Command: openflow.FlowCmdAdd, Priority: spec.prio,
			Match: spec.m, Actions: spec.acts, OutPort: openflow.PortAny,
			IdleTO: spec.idleTO, HardTO: spec.hardTO, Flags: flags,
		})
		barrier(c)
		fmt.Printf("added: priority=%d,%s actions=%s\n", spec.prio, spec.m, spec.acts)

	case "del-flows":
		spec := ""
		if len(args) > 1 {
			spec = args[1]
		}
		_, m, err := parseMatchSpec(spec)
		if err != nil {
			log.Fatal(err)
		}
		send(c, openflow.FlowMod{
			Command: openflow.FlowCmdDelete, Match: m, OutPort: openflow.PortAny,
		})
		barrier(c)
		fmt.Println("deleted")

	case "dump-flows":
		send(c, openflow.FlowStatsRequest{OutPort: openflow.PortAny, Match: flow.MatchAll()})
		m := recv(c)
		reply, ok := m.(openflow.FlowStatsReply)
		if !ok {
			log.Fatalf("unexpected reply %T", m)
		}
		for _, fs := range reply.Stats {
			fmt.Printf(" cookie=0x%x, n_packets=%d, n_bytes=%d, priority=%d,%s actions=%s\n",
				fs.Cookie, fs.PacketCount, fs.ByteCount, fs.Priority, fs.Match, fs.Actions)
		}

	case "dump-ports":
		send(c, openflow.PortStatsRequest{PortNo: openflow.PortAny})
		m := recv(c)
		reply, ok := m.(openflow.PortStatsReply)
		if !ok {
			log.Fatalf("unexpected reply %T", m)
		}
		for _, ps := range reply.Stats {
			fmt.Printf("  port %2d: rx pkts=%d bytes=%d drop=%d  tx pkts=%d bytes=%d drop=%d\n",
				ps.PortNo, ps.RxPackets, ps.RxBytes, ps.RxDropped,
				ps.TxPackets, ps.TxBytes, ps.TxDropped)
		}

	case "packet-out":
		requireArgs(args, 4)
		inPort, err := strconv.ParseUint(args[1], 10, 32)
		if err != nil {
			log.Fatal(err)
		}
		outPort, err := strconv.ParseUint(args[2], 10, 32)
		if err != nil {
			log.Fatal(err)
		}
		data, err := hex.DecodeString(args[3])
		if err != nil {
			log.Fatalf("bad hex frame: %v", err)
		}
		send(c, openflow.PacketOut{
			InPort:  uint32(inPort),
			Actions: flow.Actions{flow.Output(uint32(outPort))},
			Data:    data,
		})
		barrier(c)
		fmt.Println("sent")

	case "ping":
		start := time.Now()
		send(c, openflow.EchoRequest{Data: []byte("ofctl")})
		if _, ok := recv(c).(openflow.EchoReply); !ok {
			log.Fatal("no echo reply")
		}
		fmt.Printf("echo rtt %v\n", time.Since(start))

	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		log.Fatalf("%s: missing arguments", args[0])
	}
}

func send(c *openflow.Conn, m openflow.Msg) {
	if _, err := c.Send(m); err != nil {
		log.Fatalf("send: %v", err)
	}
}

func recv(c *openflow.Conn) openflow.Msg {
	for {
		m, _, err := c.Recv()
		if err != nil {
			log.Fatalf("recv: %v", err)
		}
		// Skip asynchronous packet-ins while waiting for our reply.
		if _, ok := m.(openflow.PacketIn); ok {
			continue
		}
		return m
	}
}

func barrier(c *openflow.Conn) {
	xid, err := c.Send(openflow.BarrierRequest{})
	if err != nil {
		log.Fatalf("barrier: %v", err)
	}
	for {
		m, gotXid, err := c.Recv()
		if err != nil {
			log.Fatalf("barrier: %v", err)
		}
		if _, ok := m.(openflow.BarrierReply); ok && gotXid == xid {
			return
		}
	}
}
