package main

import (
	"testing"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

func TestParseFlowSpecBasic(t *testing.T) {
	spec, err := parseFlowSpec("in_port=1,actions=output:2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.prio != 32768 {
		t.Errorf("default priority = %d", spec.prio)
	}
	if !spec.m.Equal(flow.MatchInPort(1)) {
		t.Errorf("match = %s", spec.m)
	}
	if !spec.acts.Equal(flow.Actions{flow.Output(2)}) {
		t.Errorf("actions = %v", spec.acts)
	}
}

func TestParseFlowSpecFull(t *testing.T) {
	spec, err := parseFlowSpec(
		"priority=100,idle_timeout=30,hard_timeout=60,send_flow_rem," +
			"in_port=3,dl_type=0x0800,nw_proto=6,nw_src=10.0.0.0/8,nw_dst=192.168.1.1," +
			"tp_src=1024,tp_dst=80,actions=dec_ttl,mod_dl_dst:02:00:00:00:00:09,output:7")
	if err != nil {
		t.Fatal(err)
	}
	if spec.prio != 100 || spec.idleTO != 30 || spec.hardTO != 60 || !spec.sendRem {
		t.Fatalf("meta = %+v", spec)
	}
	want := flow.MatchInPort(3).
		WithEthType(pkt.EtherTypeIPv4).
		WithIPProto(pkt.ProtoTCP).
		WithIPSrc(pkt.IP4{10, 0, 0, 0}, 8).
		WithIPDst(pkt.IP4{192, 168, 1, 1}, 32).
		WithL4Src(1024).WithL4Dst(80)
	if !spec.m.Equal(want) {
		t.Fatalf("match = %s, want %s", spec.m, want)
	}
	wantActs := flow.Actions{
		flow.DecTTL(),
		flow.SetEthDst(pkt.MAC{2, 0, 0, 0, 0, 9}),
		flow.Output(7),
	}
	if !spec.acts.Equal(wantActs) {
		t.Fatalf("actions = %v", spec.acts)
	}
}

func TestParseFlowSpecVlanAndMACs(t *testing.T) {
	spec, err := parseFlowSpec("dl_vlan=100,dl_src=aa:bb:cc:dd:ee:ff,dl_dst=11:22:33:44:55:66,actions=drop")
	if err != nil {
		t.Fatal(err)
	}
	if spec.m.Key.VlanID != 100 {
		t.Errorf("vlan = %d", spec.m.Key.VlanID)
	}
	if spec.m.Key.EthSrc != (pkt.MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}) {
		t.Errorf("dl_src = %s", spec.m.Key.EthSrc)
	}
	if spec.m.Key.EthDst != (pkt.MAC{0x11, 0x22, 0x33, 0x44, 0x55, 0x66}) {
		t.Errorf("dl_dst = %s", spec.m.Key.EthDst)
	}
}

func TestParseFlowSpecVlanActions(t *testing.T) {
	// The sender side of a trunk lane: tag and hand to the trunk port.
	spec, err := parseFlowSpec("in_port=3,actions=push_vlan:42,output:9")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.acts.Equal(flow.Actions{flow.PushVlan(42), flow.Output(9)}) {
		t.Fatalf("actions = %v", spec.acts)
	}
	// The receiver side: match the lane, strip, deliver.
	spec, err = parseFlowSpec("in_port=9,dl_vlan=42,actions=strip_vlan,output:4")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.m.Equal(flow.MatchInPort(9).WithVlan(42)) {
		t.Fatalf("match = %s", spec.m)
	}
	if !spec.acts.Equal(flow.Actions{flow.PopVlan(), flow.Output(4)}) {
		t.Fatalf("actions = %v", spec.acts)
	}
	// VID rewrite.
	spec, err = parseFlowSpec("dl_vlan=5,actions=mod_vlan_vid:6,output:1")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.acts.Equal(flow.Actions{flow.SetVlan(6), flow.Output(1)}) {
		t.Fatalf("actions = %v", spec.acts)
	}
}

func TestParseFlowSpecErrors(t *testing.T) {
	cases := []string{
		"in_port=1",                             // no actions
		"in_port=abc,actions=output:2",          // bad number
		"bogus=1,actions=output:2",              // unknown field
		"in_port=1,actions=fly:away",            // unknown action
		"in_port=1,actions=output:notanum",      // bad output port
		"dl_src=zz:00:00:00:00:00,actions=drop", // bad MAC
		"nw_dst=10.0.0.0/99,actions=drop",       // bad prefix
		"nw_dst=10.0.0,actions=drop",            // bad IP
		"priority=70000,actions=drop",           // priority overflow
		"in_port=,actions=drop",                 // empty value
		"actions=push_vlan:0",                   // vid 0 unpushable
		"actions=push_vlan:4095",                // vid out of range
		"actions=push_vlan:xyz",                 // bad vid
		"actions=mod_vlan_vid:4095",             // vid out of range
	}
	for _, c := range cases {
		if _, err := parseFlowSpec(c); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestParseFlowSpecControllerAndMultiAction(t *testing.T) {
	spec, err := parseFlowSpec("actions=controller")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.acts.Equal(flow.Actions{flow.Controller()}) {
		t.Fatalf("actions = %v", spec.acts)
	}
	spec, err = parseFlowSpec("actions=output:1,output:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.acts.OutputPorts()) != 2 {
		t.Fatalf("multicast actions = %v", spec.acts)
	}
}

func TestParseMatchSpec(t *testing.T) {
	_, m, err := parseMatchSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(flow.MatchAll()) {
		t.Fatal("empty spec should match all")
	}
	prio, m, err := parseMatchSpec("priority=5,in_port=2")
	if err != nil {
		t.Fatal(err)
	}
	if prio != 5 || !m.Equal(flow.MatchInPort(2)) {
		t.Fatalf("prio=%d match=%s", prio, m)
	}
	if _, _, err := parseMatchSpec("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSplitTopLevel(t *testing.T) {
	got := splitTopLevel("a=1,b=2,actions=output:1,output:2")
	if len(got) != 3 || got[2] != "actions=output:1,output:2" {
		t.Fatalf("split = %q", got)
	}
	got = splitTopLevel("actions=drop")
	if len(got) != 1 {
		t.Fatalf("split = %q", got)
	}
}

func TestParseCIDRDefaults(t *testing.T) {
	addr, plen, err := parseCIDR("10.1.2.3")
	if err != nil || plen != 32 || addr != (pkt.IP4{10, 1, 2, 3}) {
		t.Fatalf("addr=%v plen=%d err=%v", addr, plen, err)
	}
	addr, plen, err = parseCIDR("10.0.0.0/8")
	if err != nil || plen != 8 || addr != (pkt.IP4{10, 0, 0, 0}) {
		t.Fatalf("addr=%v plen=%d err=%v", addr, plen, err)
	}
}
