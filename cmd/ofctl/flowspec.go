package main

import (
	"fmt"
	"strconv"
	"strings"

	"ovshighway/internal/flow"
	"ovshighway/internal/pkt"
)

// flowSpec is a parsed ovs-ofctl-style flow description.
type flowSpec struct {
	prio    uint16
	m       flow.Match
	acts    flow.Actions
	idleTO  uint16
	hardTO  uint16
	sendRem bool
}

// parseFlowSpec parses an ovs-ofctl-like flow description:
//
//	priority=100,in_port=1,dl_type=0x0800,nw_proto=17,tp_dst=53,actions=output:2
//
// Supported match/meta fields: priority, idle_timeout, hard_timeout,
// send_flow_rem, in_port, dl_type, dl_src, dl_dst, dl_vlan, nw_proto,
// nw_src, nw_dst (with /len), tp_src, tp_dst.
// Supported actions: output:N, drop, controller, dec_ttl, mod_dl_src:MAC,
// mod_dl_dst:MAC, push_vlan:VID, strip_vlan, mod_vlan_vid:VID,
// mod_vlan_pcp:PCP. (output_ecmp is datapath-internal — OpenFlow models
// multi-path output as select groups, which this wire subset does not
// speak — so it is deliberately not parseable here.)
func parseFlowSpec(s string) (flowSpec, error) {
	spec := flowSpec{
		prio: 32768, // OpenFlow default priority
		m:    flow.MatchAll(),
	}
	actionsSeen := false
	for _, part := range splitTopLevel(s) {
		kv := strings.SplitN(part, "=", 2)
		key := strings.TrimSpace(kv[0])
		if key == "" {
			continue
		}
		if key == "send_flow_rem" {
			spec.sendRem = true
			continue
		}
		if len(kv) != 2 {
			return spec, fmt.Errorf("%s needs a value", key)
		}
		val := strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "actions":
			spec.acts, err = parseActions(val)
			actionsSeen = true
		case "priority":
			err = setUint16(&spec.prio, key, val)
		case "idle_timeout":
			err = setUint16(&spec.idleTO, key, val)
		case "hard_timeout":
			err = setUint16(&spec.hardTO, key, val)
		case "in_port":
			var v uint64
			if v, err = strconv.ParseUint(val, 0, 32); err == nil {
				spec.m.Key.InPort = uint32(v)
				spec.m.Mask.InPort = ^uint32(0)
			}
		case "dl_type":
			var v uint16
			if err = setUint16(&v, key, val); err == nil {
				spec.m = spec.m.WithEthType(v)
			}
		case "dl_vlan":
			var v uint16
			if err = setUint16(&v, key, val); err == nil {
				spec.m = spec.m.WithVlan(v)
			}
		case "dl_src":
			var mac pkt.MAC
			if mac, err = parseMAC(val); err == nil {
				spec.m.Key.EthSrc = mac
				spec.m.Mask.EthSrc = pkt.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
			}
		case "dl_dst":
			var mac pkt.MAC
			if mac, err = parseMAC(val); err == nil {
				spec.m = spec.m.WithEthDst(mac)
			}
		case "nw_proto":
			var v uint64
			if v, err = strconv.ParseUint(val, 0, 8); err == nil {
				spec.m = spec.m.WithIPProto(uint8(v))
			}
		case "nw_src":
			var addr pkt.IP4
			var plen int
			if addr, plen, err = parseCIDR(val); err == nil {
				spec.m = spec.m.WithIPSrc(addr, plen)
			}
		case "nw_dst":
			var addr pkt.IP4
			var plen int
			if addr, plen, err = parseCIDR(val); err == nil {
				spec.m = spec.m.WithIPDst(addr, plen)
			}
		case "tp_src":
			var v uint16
			if err = setUint16(&v, key, val); err == nil {
				spec.m = spec.m.WithL4Src(v)
			}
		case "tp_dst":
			var v uint16
			if err = setUint16(&v, key, val); err == nil {
				spec.m = spec.m.WithL4Dst(v)
			}
		default:
			return spec, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return spec, err
		}
	}
	if !actionsSeen {
		return spec, fmt.Errorf("missing actions=")
	}
	return spec, nil
}

func setUint16(dst *uint16, key, val string) error {
	v, err := strconv.ParseUint(val, 0, 16)
	if err != nil {
		return fmt.Errorf("%s: %w", key, err)
	}
	*dst = uint16(v)
	return nil
}

// parseMatchSpec parses a match-only description (for del-flows / dump).
func parseMatchSpec(s string) (prio uint16, m flow.Match, err error) {
	if strings.TrimSpace(s) == "" {
		return 0, flow.MatchAll(), nil
	}
	spec, err := parseFlowSpec(s + ",actions=drop")
	return spec.prio, spec.m, err
}

// splitTopLevel splits on commas that are not part of an actions list tail.
// Everything after "actions=" is one field.
func splitTopLevel(s string) []string {
	if idx := strings.Index(s, "actions="); idx >= 0 {
		head := strings.Trim(s[:idx], ", ")
		var parts []string
		if head != "" {
			parts = strings.Split(head, ",")
		}
		return append(parts, s[idx:])
	}
	return strings.Split(s, ",")
}

func parseActions(s string) (flow.Actions, error) {
	var acts flow.Actions
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		switch {
		case a == "":
		case a == "drop":
			acts = append(acts, flow.Drop())
		case a == "controller" || a == "CONTROLLER":
			acts = append(acts, flow.Controller())
		case a == "dec_ttl":
			acts = append(acts, flow.DecTTL())
		case a == "strip_vlan":
			acts = append(acts, flow.PopVlan())
		case strings.HasPrefix(a, "push_vlan:"):
			vid, err := parseVid(a[len("push_vlan:"):])
			if err != nil {
				return nil, fmt.Errorf("bad push_vlan action %q: %w", a, err)
			}
			acts = append(acts, flow.PushVlan(vid))
		case strings.HasPrefix(a, "mod_vlan_vid:"):
			vid, err := parseVid(a[len("mod_vlan_vid:"):])
			if err != nil {
				return nil, fmt.Errorf("bad mod_vlan_vid action %q: %w", a, err)
			}
			acts = append(acts, flow.SetVlan(vid))
		case strings.HasPrefix(a, "mod_vlan_pcp:"):
			v, err := strconv.ParseUint(strings.TrimSpace(a[len("mod_vlan_pcp:"):]), 0, 8)
			if err != nil || v > 7 {
				return nil, fmt.Errorf("bad mod_vlan_pcp action %q: pcp must be 0..7", a)
			}
			acts = append(acts, flow.SetVlanPcp(uint8(v)))
		case strings.HasPrefix(a, "output:"):
			v, err := strconv.ParseUint(a[len("output:"):], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad output action %q", a)
			}
			acts = append(acts, flow.Output(uint32(v)))
		case strings.HasPrefix(a, "mod_dl_src:"):
			mac, err := parseMAC(a[len("mod_dl_src:"):])
			if err != nil {
				return nil, err
			}
			acts = append(acts, flow.SetEthSrc(mac))
		case strings.HasPrefix(a, "mod_dl_dst:"):
			mac, err := parseMAC(a[len("mod_dl_dst:"):])
			if err != nil {
				return nil, err
			}
			acts = append(acts, flow.SetEthDst(mac))
		default:
			return nil, fmt.Errorf("unknown action %q", a)
		}
	}
	return acts, nil
}

// parseVid parses a VLAN id, enforcing the 802.1Q range 1..4094.
func parseVid(s string) (uint16, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 16)
	if err != nil {
		return 0, err
	}
	if v == 0 || v > 4094 {
		return 0, fmt.Errorf("vid %d out of range [1,4094]", v)
	}
	return uint16(v), nil
}

func parseMAC(s string) (pkt.MAC, error) {
	var m pkt.MAC
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("bad MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("bad MAC %q: %w", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

func parseCIDR(s string) (pkt.IP4, int, error) {
	s = strings.TrimSpace(s)
	plen := 32
	if idx := strings.Index(s, "/"); idx >= 0 {
		v, err := strconv.Atoi(s[idx+1:])
		if err != nil || v < 0 || v > 32 {
			return pkt.IP4{}, 0, fmt.Errorf("bad prefix length in %q", s)
		}
		plen = v
		s = s[:idx]
	}
	var a pkt.IP4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, 0, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return a, 0, fmt.Errorf("bad IPv4 %q: %w", s, err)
		}
		a[i] = byte(v)
	}
	return a, plen, nil
}
