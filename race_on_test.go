//go:build race

package highway

// raceEnabled reports whether this test binary was built with -race, whose
// scheduler perturbs timing far too much for throughput-ratio assertions.
const raceEnabled = true
