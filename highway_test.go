package highway

import (
	"testing"
	"time"

	"ovshighway/internal/graph"
	"ovshighway/internal/openflow"
)

func TestStartStopBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeHighway} {
		node, err := Start(Config{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if node.Mode() != mode {
			t.Errorf("Mode() = %v, want %v", node.Mode(), mode)
		}
		node.Stop()
		node.Stop() // idempotent
	}
}

func TestBidirChainHighwayEndToEnd(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	chain, err := node.DeployBidirChain(2, ChainOptions{Flows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()

	if want := chain.ExpectedBypasses(); want != 6 {
		t.Fatalf("ExpectedBypasses = %d, want 6", want)
	}
	if !node.WaitBypasses(6) {
		t.Fatalf("bypasses = %d, want 6", node.BypassCount())
	}
	mpps := chain.MeasureMpps(300 * time.Millisecond)
	if mpps <= 0 {
		t.Fatalf("throughput = %f Mpps", mpps)
	}
}

func TestNICChainBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeVanilla, ModeHighway} {
		func() {
			node, err := Start(Config{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer node.Stop()
			chain, err := node.DeployNICChain(2, ChainOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer chain.Stop()
			if mode == ModeHighway {
				if want := chain.ExpectedBypasses(); want != 2 {
					t.Fatalf("ExpectedBypasses = %d, want 2", want)
				}
				if !node.WaitBypasses(2) {
					t.Fatalf("bypasses = %d", node.BypassCount())
				}
			}
			mpps := chain.MeasureMpps(300 * time.Millisecond)
			if mpps <= 0 {
				t.Fatalf("%v: throughput = %f", mode, mpps)
			}
		}()
	}
}

func TestLatencyMeasurement(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(1, ChainOptions{Timestamp: true})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !node.WaitBypasses(chain.ExpectedBypasses()) {
		t.Fatal("bypasses not established")
	}
	chain.ResetWindow()
	time.Sleep(200 * time.Millisecond)
	if chain.LatencySamples() == 0 {
		t.Fatal("no latency samples")
	}
	p50 := chain.LatencyQuantile(0.5)
	p99 := chain.LatencyQuantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("p50=%v p99=%v", p50, p99)
	}
	if chain.LatencyMean() <= 0 {
		t.Fatal("mean latency not positive")
	}
}

func TestStatsTransparencyThroughPublicAPI(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(1, ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !node.WaitBypasses(4) {
		t.Fatal("bypasses not established")
	}
	time.Sleep(200 * time.Millisecond)

	// Flow counters must keep increasing even though the vSwitch moves no
	// packets itself.
	var counted uint64
	for _, fs := range node.FlowStats() {
		counted += fs.Packets
	}
	if counted == 0 {
		t.Fatal("flow stats empty while bypass traffic flows")
	}
	// Port stats similarly.
	var rx uint64
	for id := uint32(1); id <= 4; id++ {
		if v, ok := node.PortStats(id); ok {
			rx += v.RxPackets
		}
	}
	if rx == 0 {
		t.Fatal("port stats empty while bypass traffic flows")
	}
}

func TestOpenFlowListenerIntegration(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway, OpenFlowAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	if node.OpenFlowAddr() == "" {
		t.Fatal("no OpenFlow address")
	}
	c, err := openflow.Dial(node.OpenFlowAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Send(openflow.FeaturesRequest{}); err != nil {
		t.Fatal(err)
	}
	m, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(openflow.FeaturesReply); !ok {
		t.Fatalf("got %T", m)
	}
}

// TestControllerDrivenBypassLifecycle is the headline end-to-end scenario:
// an external OpenFlow controller programs p-2-p rules over TCP, the node
// transparently builds bypasses, and deleting a rule dissolves them — all
// while the controller observes a perfectly standard switch.
func TestControllerDrivenBypassLifecycle(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway, OpenFlowAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	// Two idle VMs with one port each (no deployment: raw plumbing).
	ids1, _, err := node.Internal().CreateVM("vmA", 1)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := node.Internal().CreateVM("vmB", 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ids1[0], ids2[0]

	c, err := openflow.Dial(node.OpenFlowAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	send := func(fm openflow.FlowMod) {
		t.Helper()
		if _, err := c.Send(fm); err != nil {
			t.Fatal(err)
		}
	}
	send(openflow.FlowMod{Command: openflow.FlowCmdAdd, Priority: 10,
		Match:   matchInPort(a),
		Actions: outputTo(b)})
	send(openflow.FlowMod{Command: openflow.FlowCmdAdd, Priority: 10,
		Match:   matchInPort(b),
		Actions: outputTo(a)})

	if !node.WaitBypasses(2) {
		t.Fatalf("bypasses = %d, want 2", node.BypassCount())
	}

	// Controller deletes one direction: that bypass must dissolve.
	send(openflow.FlowMod{Command: openflow.FlowCmdDeleteStrict, Priority: 10,
		Match:   matchInPort(a),
		OutPort: openflow.PortAny})
	if !node.WaitBypasses(1) {
		t.Fatalf("bypasses = %d, want 1", node.BypassCount())
	}
}

func TestExperimentRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests in -short mode")
	}
	cfg := ExperimentConfig{Warmup: 50 * time.Millisecond, Window: 100 * time.Millisecond, Flows: 2}

	r3a, err := RunFig3aPoint(3, ModeHighway, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3a.Mpps <= 0 {
		t.Fatalf("fig3a row %+v", r3a)
	}
	r3b, err := RunFig3bPoint(2, ModeVanilla, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3b.Mpps <= 0 {
		t.Fatalf("fig3b row %+v", r3b)
	}
	lat, err := RunLatencyPoint(3, ModeVanilla, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lat.P50 <= 0 || lat.Samples == 0 {
		t.Fatalf("latency row %+v", lat)
	}
	setup, err := RunSetupTime(4, time.Millisecond, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if setup.Samples != 4 || setup.Mean <= 0 {
		t.Fatalf("setup row %+v", setup)
	}
	// With ~3ms of emulated control-plane latency per link (2 plugs + 1
	// config minimum), setup must exceed the raw software cost.
	if setup.Min < 3*time.Millisecond {
		t.Fatalf("emulated delays not reflected: min %v", setup.Min)
	}
}

func TestInvalidExperimentParams(t *testing.T) {
	if _, err := RunFig3aPoint(1, ModeVanilla, ExperimentConfig{}); err == nil {
		t.Error("fig3a with 1 VM accepted")
	}
	if _, err := RunFig3bPoint(0, ModeVanilla, ExperimentConfig{}); err == nil {
		t.Error("fig3b with 0 VMs accepted")
	}
	if _, err := RunLatencyPoint(0, ModeVanilla, ExperimentConfig{}); err == nil {
		t.Error("latency with 0 VMs accepted")
	}
}

func TestDeployCustomGraphViaPublicAPI(t *testing.T) {
	node, err := Start(Config{Mode: ModeVanilla})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	g := &Graph{
		VNFs: []graph.VNF{
			{Name: "src", Kind: graph.KindSource},
			{Name: "fw", Kind: graph.KindForward},
			{Name: "dst", Kind: graph.KindSink},
		},
		Edges: []graph.Edge{
			{A: graph.VNFPort("src", 0), B: graph.VNFPort("fw", 0), Bidirectional: true},
			{A: graph.VNFPort("fw", 1), B: graph.VNFPort("dst", 0), Bidirectional: true},
		},
	}
	d, err := node.Deploy(g)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()
	sink := d.Internal().Sink("dst")
	deadline := time.Now().Add(3 * time.Second)
	for sink.Received.Load() < 1000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sink.Received.Load() < 1000 {
		t.Fatalf("sink got %d", sink.Received.Load())
	}
}
