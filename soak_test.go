package highway

import (
	"testing"
	"time"

	"ovshighway/internal/flow"
)

// TestRuleChurnSoak hammers the control plane while traffic flows: a chain
// carries bidirectional load as rules are repeatedly refined (dissolving
// bypasses) and restored (re-forming them). The chain must keep delivering
// throughout, and the node must end with no leaked bypasses, segments, or
// buffers.
func TestRuleChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test in -short mode")
	}
	node, err := Start(Config{Mode: ModeHighway, PoolSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	chain, err := node.DeployBidirChain(2, ChainOptions{Flows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !node.WaitBypasses(chain.ExpectedBypasses()) {
		t.Fatal("initial bypasses not established")
	}

	tb := node.Internal().Switch.Table()
	refinement := flow.MatchInPort(1).WithL4Dst(9999)

	end := chain.ends[0]
	startCount := end.Received.Load()
	for round := 0; round < 30; round++ {
		// Refine: port 1's steering becomes ambiguous, bypass dissolves.
		tb.Add(1000, refinement, flow.Actions{flow.Output(3)}, 0xc0ffee)
		// Restore.
		tb.DeleteStrict(1000, refinement)
		time.Sleep(10 * time.Millisecond)
	}
	// Traffic must have kept moving across the churn (individual rounds may
	// legitimately pause one direction while the manager drains a link).
	deadline := time.Now().Add(2 * time.Second)
	for end.Received.Load() < startCount+10000 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := end.Received.Load(); got < startCount+10000 {
		t.Fatalf("traffic stalled across churn: %d → %d", startCount, got)
	}

	// Converge back to the fully-bypassed steady state.
	if !node.WaitBypasses(chain.ExpectedBypasses()) {
		t.Fatalf("bypasses did not reconverge: %d live", node.BypassCount())
	}
	chain.Stop()
	waitPoolFull(t, node)
	if node.Internal().Registry.Len() != 0 {
		t.Fatal("segments leaked after churn")
	}
}

// TestManyFlowsClassifierPressure floods the table with hundreds of refined
// non-p2p rules on top of the chain's steering rules: the detector must
// keep every bypass down (steering is ambiguous) and datapath classification
// must still be correct once the clutter is removed.
func TestManyFlowsClassifierPressure(t *testing.T) {
	node, err := Start(Config{Mode: ModeHighway, PoolSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	chain, err := node.DeployBidirChain(1, ChainOptions{Flows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Stop()
	if !node.WaitBypasses(4) {
		t.Fatal("bypasses not established")
	}

	tb := node.Internal().Switch.Table()
	// 300 refined rules across all chain ports, each diverging.
	for i := 0; i < 300; i++ {
		m := flow.MatchInPort(uint32(1 + i%4)).WithL4Dst(uint16(10000 + i))
		tb.Add(uint16(500+i%50), m, flow.Actions{flow.Controller()}, uint64(i))
	}
	deadline := time.Now().Add(3 * time.Second)
	for node.BypassCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if node.BypassCount() != 0 {
		t.Fatalf("bypasses live despite divergent rules: %d", node.BypassCount())
	}

	// Traffic still flows through the vSwitch path under the rule load.
	mpps := chain.MeasureMpps(200 * time.Millisecond)
	if mpps <= 0 {
		t.Fatalf("no throughput under classifier pressure")
	}

	// Remove the clutter: bypasses return.
	tb.DeleteWhere(func(f *flow.Flow) bool { return f.Priority >= 500 })
	if !node.WaitBypasses(4) {
		t.Fatalf("bypasses did not return: %d", node.BypassCount())
	}
}
