package highway

import "ovshighway/internal/flow"

// Test helpers bridging to internal flow types.

func matchInPort(p uint32) flow.Match { return flow.MatchInPort(p) }
func outputTo(p uint32) flow.Actions  { return flow.Actions{flow.Output(p)} }
